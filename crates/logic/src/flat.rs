//! Flat, allocation-free cover kernels.
//!
//! The legacy pipeline represents a cover as `Vec<Cube>` with every cube
//! owning its own `Vec<u64>`; each ESPRESSO pass then clones, sorts, and
//! rebuilds those vectors, so steady-state minimization is dominated by
//! allocator traffic. This module provides a flat alternative:
//!
//! * [`FlatCover`] — one contiguous `Vec<u64>` with a fixed word stride per
//!   cube, plus word-parallel kernels ([`cube_and_into`], [`cube_contains`],
//!   [`cube_distance`], [`cube_consensus_into`], [`cube_cofactor_into`])
//!   that write into caller-owned scratch. These work for any domain.
//! * A flat ESPRESSO engine covering **every** domain, as a ladder of
//!   specializations over the cube's fixed word stride:
//!   - an inline single-word fast path for the common all-binary case
//!     (`2 · num_vars ≤ 64`): each cube is one `u64` and every kernel is a
//!     handful of bit tricks;
//!   - a generic multi-word engine for everything else (multi-valued
//!     variables, > 64 total parts), where each cube is a `&[u64]` chunk of
//!     stride `words()`. The stride is threaded through a zero-sized
//!     `Stride` type parameter, so the 1/2/4-word instantiations compile
//!     to register-blocked straight-line kernels and only wider domains pay
//!     a counted loop.
//!
//!   Both run the full ESPRESSO loop (expand / reduce / irredundant /
//!   essentials / last-gasp, with the unate-recursive tautology and
//!   complement underneath) over plain word slices drawn from a
//!   [`MinimizeScratch`] pool; after warm-up the steady state performs no
//!   per-cube heap allocation.
//!
//! Every engine rung is an exact mirror of the legacy `Vec<Cube>` code:
//! same cube orderings (stable sorts on the same keys), same branch
//! variables, same budget ticks and [`crate::obs`] counters.
//! [`flat_espresso_bounded`] is therefore bit-identical to
//! [`crate::espresso_bounded`] on *all* domains — the differential property
//! tests in `tests/prop_flat_cover.rs` enforce exactly that. There is no
//! silent fallback: the legacy driver survives only as the independent
//! oracle those suites compare against ([`obs::Counter::LegacyFallback`] is
//! the tripwire proving nothing re-routes to it).

use crate::budget::{Budget, Completion};
use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::Domain;
use crate::espresso::MinimizeOptions;
use crate::obs;
use crate::simd::{self, AlignedWords, Kern, KernelBackend, ScalarKern};

// ---------------------------------------------------------------------------
// Generic flat layer: FlatDomain, FlatCover, word-parallel kernels
// ---------------------------------------------------------------------------

/// Precomputed per-variable word/mask layout of a [`Domain`], flattened so
/// the word-parallel kernels never consult the `Domain` object (or allocate)
/// per operation.
#[derive(Debug, Clone)]
pub struct FlatDomain {
    words: usize,
    num_vars: usize,
    total_parts: usize,
    full: Vec<u64>,
    /// Per variable: (first word index, start offset into `masks`, number of
    /// words the variable's parts span).
    var_spans: Vec<(usize, usize, usize)>,
    /// Concatenated per-word bit masks for each variable's parts.
    masks: Vec<u64>,
    /// Per variable: global index of its first part.
    offsets: Vec<usize>,
    /// Per variable: number of parts.
    parts: Vec<usize>,
    /// Per variable: a full-stride mask (zero outside the variable's span,
    /// the span masks inside it), `num_vars * words` words total — lets
    /// sweep kernels test literal emptiness without the span indirection.
    /// Only the wide backend reads it, so it is dead weight without `simd`.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    var_masks: Vec<u64>,
}

impl FlatDomain {
    /// Flattens `dom` into word/mask form.
    pub fn new(dom: &Domain) -> FlatDomain {
        let words = dom.words();
        let full = dom.full_words().to_vec();
        let mut var_spans = Vec::with_capacity(dom.num_vars());
        let mut masks = Vec::new();
        let mut offsets = Vec::with_capacity(dom.num_vars());
        let mut parts = Vec::with_capacity(dom.num_vars());
        for v in 0..dom.num_vars() {
            let var = dom.var(v);
            let offset = var.offset();
            let last = offset + var.parts() - 1;
            let first_word = offset / 64;
            let last_word = last / 64;
            let start = masks.len();
            for w in first_word..=last_word {
                let mut m = 0u64;
                for p in var.part_range() {
                    if p / 64 == w {
                        m |= 1u64 << (p % 64);
                    }
                }
                masks.push(m);
            }
            var_spans.push((first_word, start, last_word - first_word + 1));
            offsets.push(offset);
            parts.push(var.parts());
        }
        let mut var_masks = vec![0u64; dom.num_vars() * words];
        for (v, &(first_word, start, span)) in var_spans.iter().enumerate() {
            for k in 0..span {
                var_masks[v * words + first_word + k] = masks[start + k];
            }
        }
        FlatDomain {
            words,
            num_vars: dom.num_vars(),
            total_parts: dom.total_parts(),
            full,
            var_spans,
            masks,
            offsets,
            parts,
            var_masks,
        }
    }

    /// Word stride of a cube in this domain.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of parts across all variables.
    pub fn total_parts(&self) -> usize {
        self.total_parts
    }

    /// The full (universe) cube as a word slice.
    pub fn full(&self) -> &[u64] {
        &self.full
    }

    /// Whether variable `v`'s literal is empty in the *meet* of `a` and `b`
    /// (both given as word slices).
    pub(crate) fn meet_var_empty(&self, a: &[u64], b: &[u64], v: usize) -> bool {
        let (first, start, span) = self.var_spans[v];
        for k in 0..span {
            if a[first + k] & b[first + k] & self.masks[start + k] != 0 {
                return false;
            }
        }
        true
    }

    /// Whether every variable's literal is non-empty in the *materialized*
    /// meet `m` — the wide kernels compute `a ∧ b` once with a vector AND
    /// and then run this single-operand walk instead of the double-indexed
    /// [`FlatDomain::meet_var_empty`] sweep.
    #[cfg(feature = "simd")]
    pub(crate) fn meet_all_vars_nonempty(&self, m: &[u64]) -> bool {
        (0..self.num_vars).all(|v| {
            let (first, start, span) = self.var_spans[v];
            (0..span).any(|k| m[first + k] & self.masks[start + k] != 0)
        })
    }

    /// Number of variables whose literal is empty in the materialized meet
    /// `m` — the wide-kernel counterpart of [`cube_distance`].
    #[cfg(feature = "simd")]
    pub(crate) fn meet_empty_vars(&self, m: &[u64]) -> usize {
        (0..self.num_vars)
            .filter(|&v| {
                let (first, start, span) = self.var_spans[v];
                (0..span).all(|k| m[first + k] & self.masks[start + k] == 0)
            })
            .count()
    }

    /// A copy of this layout with the cube stride padded up to `words`
    /// trailing zero words. The variable spans and masks are untouched, so
    /// every masked operation ignores the padding, and the padded words of
    /// `full` are zero, so the cofactor body `(x | !p) & full` keeps them
    /// zero too — cubes that start zero-padded stay zero-padded through the
    /// whole engine. Used by the Wide backend to lift awkward strides onto
    /// a monomorphized power-of-two rung.
    #[cfg(feature = "simd")]
    pub(crate) fn padded_to(&self, words: usize) -> FlatDomain {
        debug_assert!(words >= self.words);
        let mut fd = self.clone();
        fd.full.resize(words, 0);
        fd.var_masks.clear();
        for chunk in self.var_masks.chunks_exact(self.words) {
            fd.var_masks.extend_from_slice(chunk);
            fd.var_masks.resize(fd.var_masks.len() + (words - self.words), 0);
        }
        fd.words = words;
        fd
    }

    /// The per-variable full-stride literal masks, `num_vars * words` words
    /// (see the field doc) — the sweep kernels' view of the layout.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    pub(crate) fn var_masks(&self) -> &[u64] {
        &self.var_masks
    }
}

/// Whether the word-slice cube `c` is valid in `fd` (every variable literal
/// non-empty).
pub fn cube_is_valid(fd: &FlatDomain, c: &[u64]) -> bool {
    (0..fd.num_vars).all(|v| {
        let (first, start, span) = fd.var_spans[v];
        (0..span).any(|k| c[first + k] & fd.masks[start + k] != 0)
    })
}

/// Word-parallel meet: `out = a ∧ b`. All slices must share the domain's
/// stride.
pub fn cube_and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
    }
}

/// Whether cube `a` contains (covers) cube `b`: every part of `b` is a part
/// of `a`.
pub fn cube_contains(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| y & !x == 0)
}

/// Number of variables whose literal is empty in the meet of `a` and `b` —
/// the classic cube distance.
pub fn cube_distance(fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize {
    (0..fd.num_vars)
        .filter(|&v| fd.meet_var_empty(a, b, v))
        .count()
}

/// Consensus of `a` and `b` into `out`. Returns `false` (leaving `out`
/// unspecified) when the distance is not exactly 1.
pub fn cube_consensus_into(fd: &FlatDomain, a: &[u64], b: &[u64], out: &mut [u64]) -> bool {
    let mut conflict = None;
    for v in 0..fd.num_vars {
        if fd.meet_var_empty(a, b, v) {
            if conflict.is_some() {
                return false;
            }
            conflict = Some(v);
        }
    }
    let Some(v) = conflict else {
        return false;
    };
    cube_and_into(a, b, out);
    let (first, start, span) = fd.var_spans[v];
    for k in 0..span {
        out[first + k] |= (a[first + k] | b[first + k]) & fd.masks[start + k];
    }
    true
}

/// Cofactor of `a` with respect to `p` into `out`. Returns `false` (leaving
/// `out` unspecified) when `a` and `p` do not intersect.
pub fn cube_cofactor_into(fd: &FlatDomain, a: &[u64], p: &[u64], out: &mut [u64]) -> bool {
    for v in 0..fd.num_vars {
        if fd.meet_var_empty(a, p, v) {
            return false;
        }
    }
    for (k, o) in out.iter_mut().enumerate() {
        *o = (a[k] | !p[k]) & fd.full[k];
    }
    true
}

/// A cover stored as one contiguous word buffer with a fixed stride per
/// cube. Pushing reuses the tail of the single allocation; iteration yields
/// word slices with no per-cube indirection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatCover {
    stride: usize,
    /// 64-byte-aligned backing store (see [`AlignedWords`]): wide loads
    /// from the buffer head never straddle a cache line.
    words: AlignedWords,
}

impl FlatCover {
    /// An empty flat cover with the given word stride (`stride ≥ 1`).
    pub fn new(stride: usize) -> FlatCover {
        FlatCover {
            stride: stride.max(1),
            words: AlignedWords::new(),
        }
    }

    /// Flattens an existing [`Cover`].
    pub fn from_cover(cover: &Cover) -> FlatCover {
        let stride = cover.domain().words();
        let mut fc = FlatCover::new(stride);
        for c in cover.iter() {
            fc.words.extend_from_slice(c.words());
        }
        fc
    }

    /// Rebuilds a [`Cover`] over `dom` (which must have this stride).
    /// Invalid cubes are dropped, mirroring [`Cover::from_cubes`].
    pub fn to_cover(&self, dom: &Domain) -> Cover {
        Cover::from_cubes(
            dom,
            self.iter().map(|w| Cube::from_raw_words(w.to_vec())),
        )
    }

    /// Word stride per cube.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.words.len() / self.stride
    }

    /// Whether the cover has no cubes.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The `i`-th cube as a word slice.
    pub fn cube(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Mutable view of the `i`-th cube.
    pub fn cube_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Appends a cube (a word slice of exactly `stride` words; bits above
    /// the domain's total parts must be zero).
    pub fn push(&mut self, cube: &[u64]) {
        debug_assert_eq!(cube.len(), self.stride);
        self.words.extend_from_slice(cube);
    }

    /// Removes all cubes, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterates cubes as word slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> {
        self.words.chunks_exact(self.stride)
    }
}

// ---------------------------------------------------------------------------
// Scratch pool
// ---------------------------------------------------------------------------

/// Reusable scratch for the flat minimization engine.
///
/// Holds a pool of word buffers plus the flag/order buffers the expand and
/// irredundant passes need. After the first minimization warms the pool,
/// subsequent calls perform no heap allocation. One scratch must not be
/// shared across threads; every long-lived consumer (the evaluation cache,
/// the ENC baseline) owns its own.
#[derive(Debug, Default)]
pub struct MinimizeScratch {
    free: Vec<AlignedWords>,
    pairs: Vec<(usize, usize)>,
    flags: Vec<bool>,
    /// The last multi-word domain layout, cached so back-to-back
    /// minimizations over one domain (the common shape: a search loop
    /// re-pricing covers) rebuild nothing. Keyed by the `Domain` handle;
    /// the comparison is an `Arc` pointer check in the hot case.
    layout: Option<(Domain, FlatDomain)>,
}

impl MinimizeScratch {
    /// A fresh (cold) scratch pool.
    pub fn new() -> MinimizeScratch {
        MinimizeScratch::default()
    }

    /// Takes a cleared word buffer from the pool (allocating only when the
    /// pool is empty). Buffers are [`AlignedWords`], so every pooled
    /// allocation honors the 64-byte alignment contract.
    pub(crate) fn take(&mut self) -> AlignedWords {
        match self.free.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => AlignedWords::new(),
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub(crate) fn give(&mut self, v: AlignedWords) {
        self.free.push(v);
    }

    /// Takes the cached [`FlatDomain`] for `dom` (building it on a cold or
    /// mismatched cache). Pair with [`MinimizeScratch::put_layout`].
    fn take_layout(&mut self, dom: &Domain) -> FlatDomain {
        match self.layout.take() {
            Some((d, fd)) if d == *dom => fd,
            _ => FlatDomain::new(dom),
        }
    }

    /// Stores the layout back for the next minimization over `dom`.
    fn put_layout(&mut self, dom: &Domain, fd: FlatDomain) {
        self.layout = Some((dom.clone(), fd));
    }
}

// ---------------------------------------------------------------------------
// Single-word binary engine
// ---------------------------------------------------------------------------

const EVENS: u64 = 0x5555_5555_5555_5555;

/// Context for the single-word all-binary fast path: `nv` binary variables,
/// variable `v` occupying bits `2v` (value 0) and `2v + 1` (value 1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinCtx {
    nv: usize,
    full: u64,
    evens: u64,
}

impl BinCtx {
    /// Builds the context for an eligible domain (see [`flat_eligible`]).
    pub(crate) fn new(dom: &Domain) -> BinCtx {
        debug_assert!(flat_eligible(dom));
        let full = dom.full_words()[0];
        BinCtx {
            nv: dom.num_vars(),
            full,
            evens: EVENS & full,
        }
    }
}

/// Whether `dom` is handled by the single-word binary engine: at least one
/// variable, every variable two-valued, and all parts within one word.
pub fn flat_eligible(dom: &Domain) -> bool {
    dom.num_vars() >= 1
        && dom.words() == 1
        && (0..dom.num_vars()).all(|v| dom.var(v).parts() == 2)
}

#[inline]
fn valid_w(ctx: BinCtx, c: u64) -> bool {
    (c | c >> 1) & ctx.evens == ctx.evens
}

#[inline]
fn covers_w(a: u64, b: u64) -> bool {
    b & !a == 0
}

#[inline]
fn dist_w(ctx: BinCtx, a: u64, b: u64) -> u32 {
    let m = a & b;
    (ctx.evens & !(m | m >> 1)).count_ones()
}

/// Consensus at distance exactly 1 (checked by the caller via [`dist_w`]).
#[inline]
fn consensus_w(ctx: BinCtx, a: u64, b: u64) -> u64 {
    let m = a & b;
    let cm = ctx.evens & !(m | m >> 1);
    debug_assert_eq!(cm.count_ones(), 1);
    let vbit = cm.trailing_zeros();
    m | ((a | b) & (3u64 << vbit))
}

/// The cube asserting part `p` (0 or 1) of variable `v` and nothing else:
/// full everywhere except the opposite part of `v` is cleared.
#[inline]
fn part_cube_w(ctx: BinCtx, v: usize, p: usize) -> u64 {
    ctx.full & !(1u64 << (2 * v + (1 - p)))
}

#[inline]
fn cofactor_w(ctx: BinCtx, a: u64, p: u64) -> Option<u64> {
    if !valid_w(ctx, a & p) {
        return None;
    }
    Some((a | !p) & ctx.full)
}

#[inline]
fn literal_cost_one_w(ctx: BinCtx, c: u64) -> usize {
    ctx.nv - (c & (c >> 1) & ctx.evens).count_ones() as usize
}

fn cost_w(ctx: BinCtx, f: &[u64]) -> (usize, usize) {
    (
        f.len(),
        f.iter().map(|&c| literal_cost_one_w(ctx, c)).sum(),
    )
}

// --- stable sorts ---------------------------------------------------------
//
// `slice::sort_by_key` is stable but allocates for slices longer than 20.
// These insertion sorts produce the identical permutation for the same key
// (stable: an element only moves past strictly-"greater" predecessors) with
// no allocation. Cover sizes in this pipeline are small enough that the
// quadratic worst case never dominates the kernels themselves.

fn insertion_sort_by(v: &mut [u64], mut before: impl FnMut(u64, u64) -> bool) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && before(x, v[j - 1]) {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

/// Descending part count (mirrors `sort_by_key(Reverse(part_count))`).
fn sort_desc_parts(v: &mut [u64]) {
    insertion_sort_by(v, |a, b| a.count_ones() > b.count_ones());
}

/// Ascending part count.
fn sort_asc_parts(v: &mut [u64]) {
    insertion_sort_by(v, |a, b| a.count_ones() < b.count_ones());
}

/// Expand's part order: descending weight, ties by ascending part index —
/// a strict total order, so any sort gives the identical sequence.
fn sort_expand_order(v: &mut [(usize, usize)]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && (x.1 > v[j - 1].1 || (x.1 == v[j - 1].1 && x.0 < v[j - 1].0)) {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

// --- single-cube-containment / scc ---------------------------------------

/// In-place single-cube containment, mirroring [`Cover::scc`]: stable sort
/// by descending part count, then drop any cube covered by an earlier kept
/// cube. For single-word cubes the fold-OR signature *is* the cube, so the
/// legacy prefilter (`sig & !ksig != 0`) is exact and the subsequent
/// `covers` check always succeeds when reached — the counters still mirror
/// the legacy accounting.
fn scc_w(cubes: &mut AlignedWords) {
    sort_desc_parts(cubes);
    let mut pairs = 0u64;
    let mut prefilter_rejects = 0u64;
    let mut kept = 0usize;
    'outer: for i in 0..cubes.len() {
        let c = cubes[i];
        for &k in &cubes[..kept] {
            pairs += 1;
            if c & !k != 0 {
                prefilter_rejects += 1;
                continue;
            }
            // signature == cube here, so the kept cube covers c
            continue 'outer;
        }
        cubes[kept] = c;
        kept += 1;
    }
    cubes.truncate(kept);
    obs::count(obs::Counter::SccPairs, pairs);
    obs::count(obs::Counter::SccPrefilterRejects, prefilter_rejects);
}

// --- unate-recursive paradigm: tautology and complement -------------------

/// Most binate variable, mirroring the legacy selection: highest count of
/// cubes with a non-full literal; on ties the legacy `parts < best_parts`
/// tie-break never fires for all-binary domains, so first-wins on equal
/// counts.
fn most_binate_w(ctx: BinCtx, cubes: &[u64]) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for v in 0..ctx.nv {
        let mask = 3u64 << (2 * v);
        let count = cubes.iter().filter(|&&c| c & mask != mask).count();
        if count == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((bc, _)) => count > bc,
        };
        if better {
            best = Some((count, v));
        }
    }
    best.map(|(_, v)| v)
}

fn taut_rec_w(ctx: BinCtx, cubes: &[u64], scratch: &mut MinimizeScratch) -> bool {
    if cubes.contains(&ctx.full) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    let mut acc = 0u64;
    let mut covers_all_parts = false;
    for &c in cubes {
        acc |= c;
        if acc == ctx.full {
            covers_all_parts = true;
            break;
        }
    }
    if !covers_all_parts {
        return false;
    }
    let Some(v) = most_binate_w(ctx, cubes) else {
        return false;
    };
    let mut branch = scratch.take();
    let mut taut = true;
    for p in 0..2 {
        let pc = part_cube_w(ctx, v, p);
        branch.clear();
        for &c in cubes {
            if let Some(cf) = cofactor_w(ctx, c, pc) {
                branch.push(cf);
            }
        }
        if !taut_rec_w(ctx, &branch, scratch) {
            taut = false;
            break;
        }
    }
    scratch.give(branch);
    taut
}

/// Complement of a single cube: one cube per non-full variable, in variable
/// order (mirrors the legacy `cube_complement`; for binary domains the
/// result cubes are always valid).
fn cube_complement_w(ctx: BinCtx, c: u64, out: &mut AlignedWords) {
    for v in 0..ctx.nv {
        let mask = 3u64 << (2 * v);
        if c & mask == mask {
            continue;
        }
        out.push(ctx.full & !(c & mask));
    }
}

/// Recursive complement, mirroring the legacy `compl_rec`: branch on the
/// most binate variable, lift cubes common to both branch complements, and
/// finish with an scc pass (counters fire, as in the legacy
/// `Cover::from_cubes` + `scc` epilogue).
fn compl_rec_w(ctx: BinCtx, cubes: &[u64], out: &mut AlignedWords, scratch: &mut MinimizeScratch) {
    debug_assert!(out.is_empty());
    if cubes.is_empty() {
        out.push(ctx.full);
        return;
    }
    if cubes.contains(&ctx.full) {
        return;
    }
    if cubes.len() == 1 {
        cube_complement_w(ctx, cubes[0], out);
        return;
    }
    let Some(v) = most_binate_w(ctx, cubes) else {
        return;
    };
    let mut branch = scratch.take();
    let mut r0 = scratch.take();
    let mut r1 = scratch.take();
    for p in 0..2 {
        let pc = part_cube_w(ctx, v, p);
        branch.clear();
        for &c in cubes {
            if let Some(cf) = cofactor_w(ctx, c, pc) {
                branch.push(cf);
            }
        }
        let target = if p == 0 { &mut r0 } else { &mut r1 };
        compl_rec_w(ctx, &branch, target, scratch);
    }
    scratch.give(branch);
    let mut lifted = scratch.take();
    for &c in r0.iter() {
        if r1.contains(&c) {
            lifted.push(c);
        }
    }
    for (p, branch_out) in [(0usize, &r0), (1usize, &r1)] {
        let pc = part_cube_w(ctx, v, p);
        for &c in branch_out.iter() {
            if lifted.contains(&c) {
                continue;
            }
            let r = c & pc;
            if valid_w(ctx, r) {
                out.push(r);
            }
        }
    }
    out.extend_from_slice(&lifted);
    scc_w(out);
    scratch.give(lifted);
    scratch.give(r1);
    scratch.give(r0);
}

/// Whether the cover `f` covers the single cube `c` (tautology of the
/// cofactor), mirroring the legacy `cover_covers_cube`.
fn cover_covers_cube_w(ctx: BinCtx, f: &[u64], c: u64, scratch: &mut MinimizeScratch) -> bool {
    let mut g = scratch.take();
    for &x in f {
        if let Some(cf) = cofactor_w(ctx, x, c) {
            g.push(cf);
        }
    }
    let taut = taut_rec_w(ctx, &g, scratch);
    scratch.give(g);
    taut
}

// --- espresso passes ------------------------------------------------------

fn expand_w(ctx: BinCtx, f: &mut AlignedWords, off: &[u64], scratch: &mut MinimizeScratch) {
    sort_asc_parts(f);
    let n = f.len();
    let mut covered = std::mem::take(&mut scratch.flags);
    covered.clear();
    covered.resize(n, false);
    let mut order = std::mem::take(&mut scratch.pairs);
    let mut result = scratch.take();
    for i in 0..n {
        if covered[i] {
            continue;
        }
        let mut c = f[i];
        order.clear();
        for p in 0..2 * ctx.nv {
            if c >> p & 1 != 0 {
                continue;
            }
            let bit = 1u64 << p;
            let w = (0..n)
                .filter(|&j| j != i && !covered[j] && f[j] & bit != 0)
                .count();
            order.push((p, w));
        }
        sort_expand_order(&mut order);
        for &(p, _) in order.iter() {
            let candidate = c | (1u64 << p);
            if off.iter().all(|&o| !valid_w(ctx, candidate & o)) {
                c = candidate;
            }
        }
        for j in 0..n {
            if j != i && !covered[j] && covers_w(c, f[j]) {
                covered[j] = true;
            }
        }
        result.push(c);
    }
    std::mem::swap(f, &mut result);
    scratch.give(result);
    scratch.pairs = order;
    scratch.flags = covered;
}

fn reduce_w(ctx: BinCtx, f: &mut AlignedWords, dc: &[u64], scratch: &mut MinimizeScratch) {
    sort_desc_parts(f);
    let mut rest = scratch.take();
    let mut g = scratch.take();
    let mut h = scratch.take();
    for i in 0..f.len() {
        let c = f[i];
        if c == 0 {
            // legacy: the complement of the (empty) cofactored rest is the
            // universe with no scc pass, and the re-reduced cube stays
            // invalid — counter-identical shortcut.
            continue;
        }
        rest.clear();
        for (j, &x) in f.iter().enumerate() {
            if j != i && x != 0 {
                rest.push(x);
            }
        }
        rest.extend_from_slice(dc);
        g.clear();
        for &x in rest.iter() {
            if let Some(cf) = cofactor_w(ctx, x, c) {
                g.push(cf);
            }
        }
        h.clear();
        compl_rec_w(ctx, &g, &mut h, scratch);
        if h.is_empty() {
            f[i] = 0;
        } else {
            let sc = h.iter().fold(0u64, |acc, &x| acc | x);
            let r = c & sc;
            f[i] = if valid_w(ctx, r) { r } else { 0 };
        }
    }
    f.retain(|&c| c != 0);
    scratch.give(h);
    scratch.give(g);
    scratch.give(rest);
}

fn irredundant_w(ctx: BinCtx, f: &mut AlignedWords, dc: &[u64], scratch: &mut MinimizeScratch) {
    sort_desc_parts(f);
    let n = f.len();
    let mut keep = std::mem::take(&mut scratch.flags);
    keep.clear();
    keep.resize(n, true);
    let mut rest = scratch.take();
    for i in (0..n).rev() {
        rest.clear();
        for j in 0..n {
            if j != i && keep[j] {
                rest.push(f[j]);
            }
        }
        rest.extend_from_slice(dc);
        if cover_covers_cube_w(ctx, &rest, f[i], scratch) {
            keep[i] = false;
        }
    }
    let mut w = 0usize;
    for i in 0..n {
        if keep[i] {
            f[w] = f[i];
            w += 1;
        }
    }
    f.truncate(w);
    scratch.give(rest);
    scratch.flags = keep;
}

fn essentials_w(
    ctx: BinCtx,
    f: &[u64],
    dc: &[u64],
    out: &mut AlignedWords,
    scratch: &mut MinimizeScratch,
) {
    let mut h = scratch.take();
    let mut hc = scratch.take();
    for i in 0..f.len() {
        let c = f[i];
        h.clear();
        for (j, &g) in f.iter().enumerate() {
            if j == i {
                continue;
            }
            match dist_w(ctx, g, c) {
                0 => h.push(g),
                1 => h.push(consensus_w(ctx, g, c)),
                _ => {}
            }
        }
        for &g in dc {
            match dist_w(ctx, g, c) {
                0 => h.push(g),
                1 => h.push(consensus_w(ctx, g, c)),
                _ => {}
            }
        }
        hc.clear();
        for &x in h.iter() {
            if let Some(cf) = cofactor_w(ctx, x, c) {
                hc.push(cf);
            }
        }
        if !taut_rec_w(ctx, &hc, scratch) {
            out.push(c);
        }
    }
    scratch.give(hc);
    scratch.give(h);
}

/// Last-gasp pass; replaces `f` and returns `true` when it found a strictly
/// cheaper cover (mirrors the legacy `last_gasp`).
fn gasp_w(
    ctx: BinCtx,
    f: &mut AlignedWords,
    dc: &[u64],
    off: &[u64],
    scratch: &mut MinimizeScratch,
) -> bool {
    if f.len() < 2 {
        return false;
    }
    let mut reduced = scratch.take();
    let mut rest = scratch.take();
    let mut g = scratch.take();
    let mut h = scratch.take();
    for i in 0..f.len() {
        let c = f[i];
        rest.clear();
        for (j, &x) in f.iter().enumerate() {
            if j != i {
                rest.push(x);
            }
        }
        rest.extend_from_slice(dc);
        g.clear();
        for &x in rest.iter() {
            if let Some(cf) = cofactor_w(ctx, x, c) {
                g.push(cf);
            }
        }
        h.clear();
        compl_rec_w(ctx, &g, &mut h, scratch);
        if h.is_empty() {
            continue; // fully redundant: maximally reduced away
        }
        let sc = h.iter().fold(0u64, |acc, &x| acc | x);
        let r = c & sc;
        if valid_w(ctx, r) {
            reduced.push(r);
        }
    }
    scratch.give(h);
    scratch.give(g);
    scratch.give(rest);
    if reduced.is_empty() {
        scratch.give(reduced);
        return false;
    }
    let mut expanded = scratch.take();
    expanded.extend_from_slice(&reduced);
    expand_w(ctx, &mut expanded, off, scratch);
    let mut useful = scratch.take();
    for &p in expanded.iter() {
        if reduced.iter().filter(|&&r| covers_w(p, r)).count() >= 2 {
            useful.push(p);
        }
    }
    scratch.give(expanded);
    if useful.is_empty() {
        scratch.give(useful);
        scratch.give(reduced);
        return false;
    }
    let mut candidate = scratch.take();
    candidate.extend_from_slice(f);
    candidate.extend_from_slice(&useful);
    irredundant_w(ctx, &mut candidate, dc, scratch);
    let better = cost_w(ctx, &candidate) < cost_w(ctx, f);
    if better {
        std::mem::swap(f, &mut candidate);
    }
    scratch.give(candidate);
    scratch.give(useful);
    scratch.give(reduced);
    better
}

/// Whether `f` covers every cube of `g`.
fn contains_all_w(ctx: BinCtx, f: &[u64], g: &[u64], scratch: &mut MinimizeScratch) -> bool {
    g.iter()
        .all(|&c| cover_covers_cube_w(ctx, f, c, scratch))
}

/// Debug helper mirroring the legacy `implements` invariant: `on ⊆ f ⊆
/// on ∪ dc`.
fn implements_w(
    ctx: BinCtx,
    f: &[u64],
    on: &[u64],
    dc: &[u64],
    scratch: &mut MinimizeScratch,
) -> bool {
    let mut upper = scratch.take();
    upper.extend_from_slice(on);
    upper.extend_from_slice(dc);
    let ok = contains_all_w(ctx, f, on, scratch) && contains_all_w(ctx, &upper, f, scratch);
    scratch.give(upper);
    ok
}

// --- driver ---------------------------------------------------------------

/// The full ESPRESSO loop over single-word cube slices. Mirrors
/// [`crate::espresso_bounded`] pass for pass: same span (`"espresso"`),
/// same `espresso.iter` budget ticks, same counter increments, same cube
/// orderings. Returns the minimized cover as a pool buffer (the caller
/// should [`MinimizeScratch::give`] it back) plus the budget completion.
pub(crate) fn espresso_words(
    ctx: BinCtx,
    on: &[u64],
    dc: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    let span = obs::current_or(budget.recorder()).span("espresso");
    let _cur = obs::enter(span.recorder());

    if on.is_empty() {
        return (scratch.take(), budget.completion());
    }
    if !budget.tick("espresso.iter", 1) {
        // mirror the legacy degraded path: the on-set scc'd, nothing more
        let mut f = scratch.take();
        f.extend_from_slice(on);
        scc_w(&mut f);
        return (f, budget.completion());
    }

    let mut on_dc = scratch.take();
    on_dc.extend_from_slice(on);
    on_dc.extend_from_slice(dc);
    let mut off = scratch.take();
    compl_rec_w(ctx, &on_dc, &mut off, scratch);
    scratch.give(on_dc);
    if off.is_empty() {
        scratch.give(off);
        let mut f = scratch.take();
        f.push(ctx.full);
        return (f, budget.completion());
    }

    let mut f = scratch.take();
    f.extend_from_slice(on);
    scc_w(&mut f);
    obs::count(obs::Counter::ExpandCalls, 1);
    expand_w(ctx, &mut f, &off, scratch);
    obs::count(obs::Counter::IrredundantCalls, 1);
    irredundant_w(ctx, &mut f, dc, scratch);
    if opts.check_invariants {
        debug_assert!(
            implements_w(ctx, &f, on, dc, scratch),
            "flat espresso: invariant lost after initial expand/irredundant"
        );
    }

    let mut ess = scratch.take();
    let mut dc_aug = scratch.take();
    if opts.use_essentials {
        essentials_w(ctx, &f, dc, &mut ess, scratch);
        f.retain(|c| !ess.contains(c));
        dc_aug.extend_from_slice(dc);
        dc_aug.extend_from_slice(&ess);
    } else {
        dc_aug.extend_from_slice(dc);
    }
    scc_w(&mut dc_aug);

    let mut best = cost_w(ctx, &f);
    let mut iterations = 0usize;
    let mut candidate = scratch.take();
    'outer: loop {
        while iterations < opts.max_iterations {
            if !budget.tick("espresso.iter", 1) {
                break 'outer;
            }
            iterations += 1;
            obs::count(obs::Counter::EspressoIters, 1);
            if f.is_empty() {
                break 'outer;
            }
            candidate.clear();
            candidate.extend_from_slice(&f);
            obs::count(obs::Counter::ReduceCalls, 1);
            reduce_w(ctx, &mut candidate, &dc_aug, scratch);
            obs::count(obs::Counter::ExpandCalls, 1);
            expand_w(ctx, &mut candidate, &off, scratch);
            obs::count(obs::Counter::IrredundantCalls, 1);
            irredundant_w(ctx, &mut candidate, &dc_aug, scratch);
            let c = cost_w(ctx, &candidate);
            if c < best {
                best = c;
                std::mem::swap(&mut f, &mut candidate);
            } else {
                break;
            }
        }
        if !opts.use_last_gasp || iterations >= opts.max_iterations || budget.is_exhausted() {
            break;
        }
        if !gasp_w(ctx, &mut f, &dc_aug, &off, scratch) {
            break;
        }
        best = cost_w(ctx, &f);
    }
    let _ = best;

    f.extend_from_slice(&ess);
    scc_w(&mut f);
    if opts.check_invariants {
        debug_assert!(
            implements_w(ctx, &f, on, dc, scratch),
            "flat espresso: result does not implement the function"
        );
    }
    scratch.give(candidate);
    scratch.give(dc_aug);
    scratch.give(ess);
    scratch.give(off);
    (f, budget.completion())
}

// ---------------------------------------------------------------------------
// Generic multi-word engine
// ---------------------------------------------------------------------------
//
// The same ESPRESSO loop for every domain the single-word binary engine does
// not cover: multi-valued variables and/or more than 64 total parts. A cube
// is a `&[u64]` chunk of fixed stride `words()` inside pooled buffers; the
// stride is carried by the zero-sized `Stride` parameter below so the
// monomorphized 1/2/4-word engines see a compile-time constant (the word
// loops unroll into register-blocked straight-line code) while wider domains
// share one dynamic-stride instantiation. Every kernel mirrors its legacy
// `Vec<Cube>` counterpart exactly — orderings, branch variables, counters —
// so `flat_espresso_bounded` stays bit-identical to `espresso_bounded`.

/// Compile-time-or-dynamic word stride of a cube.
trait Stride: Copy {
    /// Words per cube. `FixedW` implementations return a constant the
    /// optimizer propagates into every kernel loop.
    fn w(self) -> usize;
}

/// A stride known at compile time (the register-blocked specializations).
#[derive(Clone, Copy)]
struct FixedW<const W: usize>;

impl<const W: usize> Stride for FixedW<W> {
    #[inline(always)]
    fn w(self) -> usize {
        W
    }
}

/// A stride known only at run time (the generic fallback loop).
#[derive(Clone, Copy)]
struct DynW(usize);

impl Stride for DynW {
    #[inline(always)]
    fn w(self) -> usize {
        self.0
    }
}

/// Total parts admitted by a cube chunk (no bits exist above the domain's
/// parts, so the raw popcount is the part count).
#[inline]
fn chunk_parts(c: &[u64]) -> usize {
    c.iter().map(|&x| x.count_ones() as usize).sum()
}

/// Whether `c` appears verbatim in `list` (the chunk analogue of
/// `Vec::<Cube>::contains`, i.e. exact equality, as the legacy lift and
/// essential-removal steps use).
#[inline]
fn chunk_member(list: &[u64], c: &[u64], w: usize) -> bool {
    list.chunks_exact(w).any(|x| x == c)
}

/// Stable insertion sort over `w`-word chunks; `before(x, y)` must be a
/// strict "x sorts before y" so the permutation matches the legacy stable
/// `sort_by_key` on the same key. `tmp` holds the chunk in flight.
fn insertion_sort_chunks(
    v: &mut [u64],
    w: usize,
    tmp: &mut AlignedWords,
    mut before: impl FnMut(&[u64], &[u64]) -> bool,
) {
    let n = v.len() / w;
    tmp.clear();
    tmp.resize(w, 0);
    for i in 1..n {
        tmp.copy_from_slice(&v[i * w..(i + 1) * w]);
        let mut j = i;
        while j > 0 && before(tmp, &v[(j - 1) * w..j * w]) {
            v.copy_within((j - 1) * w..j * w, j * w);
            j -= 1;
        }
        v[j * w..(j + 1) * w].copy_from_slice(tmp);
    }
}

/// Drops every chunk of `v` that appears verbatim in `list`, preserving
/// order (the chunk analogue of `f.retain(|c| !list.contains(c))`).
fn retain_chunks_not_in(v: &mut AlignedWords, list: &[u64], w: usize) {
    let n = v.len() / w;
    let mut write = 0usize;
    for i in 0..n {
        if chunk_member(list, &v[i * w..(i + 1) * w], w) {
            continue;
        }
        v.copy_within(i * w..(i + 1) * w, write * w);
        write += 1;
    }
    v.truncate(write * w);
}

/// Context of the generic engine: the flattened domain, the stride carrier,
/// and the kernel backend carrier ([`Kern`]). Copy-cheap (two words plus two
/// zero-sized carriers), threaded by value through the passes; each
/// `Stride × Kern` pair monomorphizes its own straight-line engine.
#[derive(Clone, Copy)]
struct MvCtx<'d, S: Stride, K: Kern> {
    fd: &'d FlatDomain,
    s: S,
    k: K,
}

impl<S: Stride, K: Kern> MvCtx<'_, S, K> {
    #[inline(always)]
    fn w(&self) -> usize {
        self.s.w()
    }

    #[inline(always)]
    fn full(&self) -> &[u64] {
        &self.fd.full
    }

    #[inline]
    fn is_full(&self, c: &[u64]) -> bool {
        self.k.slices_eq(c, &self.fd.full)
    }

    #[inline]
    fn covers(&self, a: &[u64], b: &[u64]) -> bool {
        self.k.covers(&a[..self.w()], &b[..self.w()])
    }

    /// Whether the meet `a ∧ b` is a valid cube — the legacy
    /// `Cube::intersects` (distance 0). The scalar kernel never
    /// materializes the meet; the wide kernels AND once and run a
    /// single-operand emptiness walk — same boolean either way.
    #[inline]
    fn meet_valid(&self, a: &[u64], b: &[u64]) -> bool {
        self.k.meet_valid(self.fd, a, b)
    }

    #[inline]
    fn var_is_full(&self, c: &[u64], v: usize) -> bool {
        let (first, start, span) = self.fd.var_spans[v];
        (0..span).all(|k| {
            c[first + k] & self.fd.masks[start + k] == self.fd.masks[start + k]
        })
    }

    #[inline]
    fn literal_cost_one(&self, c: &[u64]) -> usize {
        (0..self.fd.num_vars)
            .filter(|&v| !self.var_is_full(c, v))
            .count()
    }

    fn cost(&self, f: &[u64]) -> (usize, usize) {
        let w = self.w();
        (
            f.len() / w,
            f.chunks_exact(w).map(|c| self.literal_cost_one(c)).sum(),
        )
    }

    /// Appends the general cofactor of every cube of `cubes` with respect to
    /// cube `p` (dropping non-intersecting cubes) — the legacy
    /// `cofactor_list` / `Cover::cofactor`.
    fn cofactor_all(&self, cubes: &[u64], p: &[u64], out: &mut AlignedWords) {
        let w = self.w();
        for x in cubes.chunks_exact(w) {
            if !self.meet_valid(x, p) {
                continue;
            }
            let base = out.len();
            out.resize(base + w, 0);
            self.k
                .cofactor_into(&mut out[base..base + w], x, p, &self.fd.full);
        }
    }

    /// Appends the cofactor of every cube with respect to the part cube
    /// `(v, p)`. For a *valid* cube `c` the general cofactor by a part cube
    /// collapses: it exists iff `c` admits part `p` (every other variable's
    /// meet is `c`'s own non-empty literal), and the result is `c` with
    /// variable `v` raised to full (`c ∨ ¬pc` leaves other variables
    /// untouched because `¬pc` is empty there). All tautology/complement
    /// recursion inputs are valid — covers hold only valid cubes and
    /// cofactors of valid cubes are valid — so this is exact.
    fn cofactor_all_by_part(&self, cubes: &[u64], v: usize, p: usize, out: &mut AlignedWords) {
        let w = self.w();
        let q = self.fd.offsets[v] + p;
        let (qw, qb) = (q / 64, 1u64 << (q % 64));
        let (first, start, span) = self.fd.var_spans[v];
        for c in cubes.chunks_exact(w) {
            debug_assert!(
                cube_is_valid(self.fd, c),
                "cofactor-by-part requires valid cubes"
            );
            if c[qw] & qb == 0 {
                continue;
            }
            let base = out.len();
            out.extend_from_slice(c);
            for k in 0..span {
                out[base + first + k] |= self.fd.masks[start + k];
            }
        }
    }

    /// Appends the consensus of `a` and `b` (caller guarantees distance
    /// exactly 1): the meet everywhere, the union in the one conflicting
    /// variable — the legacy `Cube::consensus`.
    fn push_consensus(&self, a: &[u64], b: &[u64], out: &mut AlignedWords) {
        let w = self.w();
        let base = out.len();
        out.resize(base + w, 0);
        self.k
            .and_into(&mut out[base..base + w], &a[..w], &b[..w]);
        for v in 0..self.fd.num_vars {
            if !self.fd.meet_var_empty(a, b, v) {
                continue;
            }
            let (first, start, span) = self.fd.var_spans[v];
            for k in 0..span {
                out[base + first + k] |=
                    (a[first + k] | b[first + k]) & self.fd.masks[start + k];
            }
            break;
        }
    }

    /// In-place single-cube containment, mirroring [`Cover::scc`]: stable
    /// sort by descending part count, fold-OR word signature prefilter, then
    /// the full per-word containment sweep — counter for counter the legacy
    /// accounting.
    fn scc(&self, cubes: &mut AlignedWords, scratch: &mut MinimizeScratch) {
        let w = self.w();
        let mut tmp = scratch.take();
        insertion_sort_chunks(cubes, w, &mut tmp, |a, b| chunk_parts(a) > chunk_parts(b));
        scratch.give(tmp);
        let mut sigs = scratch.take();
        let n = cubes.len() / w;
        let mut pairs = 0u64;
        let mut prefilter_rejects = 0u64;
        let mut kept = 0usize;
        'outer: for i in 0..n {
            let sig = self.k.fold_or(&cubes[i * w..(i + 1) * w]);
            // kept ≤ i, so the kept prefix and cube i are disjoint slices
            let (head, cur) = cubes.split_at(i * w);
            let cur = &cur[..w];
            for k in 0..kept {
                pairs += 1;
                if sig & !sigs[k] != 0 {
                    prefilter_rejects += 1;
                    continue;
                }
                if self.k.covers(&head[k * w..(k + 1) * w], cur) {
                    continue 'outer; // an earlier kept cube covers this one
                }
            }
            cubes.copy_within(i * w..(i + 1) * w, kept * w);
            sigs.push(sig);
            kept += 1;
        }
        cubes.truncate(kept * w);
        scratch.give(sigs);
        obs::count(obs::Counter::SccPairs, pairs);
        obs::count(obs::Counter::SccPrefilterRejects, prefilter_rejects);
    }

    /// Most binate variable, with the legacy tie-break: highest non-full
    /// count, then the *fewest* parts, then first wins.
    fn most_binate(&self, cubes: &[u64]) -> Option<usize> {
        let w = self.w();
        let mut best: Option<(usize, usize, usize)> = None; // (count, parts, var)
        for v in 0..self.fd.num_vars {
            let count = cubes
                .chunks_exact(w)
                .filter(|c| !self.var_is_full(c, v))
                .count();
            if count == 0 {
                continue;
            }
            let parts = self.fd.parts[v];
            let better = match best {
                None => true,
                Some((bc, bp, _)) => count > bc || (count == bc && parts < bp),
            };
            if better {
                best = Some((count, parts, v));
            }
        }
        best.map(|(_, _, v)| v)
    }

    fn taut_rec(&self, cubes: &[u64], scratch: &mut MinimizeScratch) -> bool {
        let w = self.w();
        if cubes.chunks_exact(w).any(|c| self.is_full(c)) {
            return true;
        }
        if cubes.is_empty() {
            return false;
        }
        let mut acc = scratch.take();
        acc.resize(w, 0);
        let mut union_full = false;
        for c in cubes.chunks_exact(w) {
            self.k.or_acc(&mut acc, c);
            if self.k.slices_eq(&acc, &self.fd.full) {
                union_full = true;
                break;
            }
        }
        scratch.give(acc);
        if !union_full {
            return false;
        }
        let Some(v) = self.most_binate(cubes) else {
            return false;
        };
        let mut branch = scratch.take();
        let mut taut = true;
        for p in 0..self.fd.parts[v] {
            branch.clear();
            self.cofactor_all_by_part(cubes, v, p, &mut branch);
            if !self.taut_rec(&branch, scratch) {
                taut = false;
                break;
            }
        }
        scratch.give(branch);
        taut
    }

    /// Complement of a single cube: one cube per non-full variable in
    /// variable order (full everywhere, the variable's admitted parts
    /// cleared). Always valid for a non-full variable, matching the legacy
    /// `is_valid` filter that never fires.
    fn cube_complement(&self, c: &[u64], out: &mut AlignedWords) {
        let w = self.w();
        for v in 0..self.fd.num_vars {
            if self.var_is_full(c, v) {
                continue;
            }
            let base = out.len();
            out.extend_from_slice(&self.fd.full);
            let (first, start, span) = self.fd.var_spans[v];
            for k in 0..span {
                out[base + first + k] &= !(c[first + k] & self.fd.masks[start + k]);
            }
            debug_assert!(cube_is_valid(self.fd, &out[base..base + w]));
        }
    }

    /// Recursive complement, mirroring the legacy `compl_rec`: branch on the
    /// most binate variable, lift cubes common (verbatim) to every branch
    /// complement, narrow the rest back to their branch part, and finish
    /// with an scc pass (base cases return before scc, as in the legacy
    /// code, so no counters fire for them).
    fn compl_rec(&self, cubes: &[u64], out: &mut AlignedWords, scratch: &mut MinimizeScratch) {
        debug_assert!(out.is_empty());
        let w = self.w();
        if cubes.is_empty() {
            out.extend_from_slice(&self.fd.full);
            return;
        }
        if cubes.chunks_exact(w).any(|c| self.is_full(c)) {
            return;
        }
        if cubes.len() == w {
            self.cube_complement(cubes, out);
            return;
        }
        let Some(v) = self.most_binate(cubes) else {
            return; // every cube full everywhere: complement is empty
        };
        let parts = self.fd.parts[v];
        let mut branch = scratch.take();
        let mut results: Vec<AlignedWords> = Vec::with_capacity(parts);
        for p in 0..parts {
            branch.clear();
            self.cofactor_all_by_part(cubes, v, p, &mut branch);
            let mut r = scratch.take();
            self.compl_rec(&branch, &mut r, scratch);
            results.push(r);
        }
        scratch.give(branch);
        let mut lifted = scratch.take();
        if let [first, rest @ ..] = results.as_slice() {
            for c in first.chunks_exact(w) {
                if rest.iter().all(|b| chunk_member(b, c, w)) {
                    lifted.extend_from_slice(c);
                }
            }
        }
        let (qfirst, qstart, qspan) = self.fd.var_spans[v];
        for (p, branch_out) in results.iter().enumerate() {
            let q = self.fd.offsets[v] + p;
            let (qw, qb) = (q / 64, 1u64 << (q % 64));
            for c in branch_out.chunks_exact(w) {
                if chunk_member(&lifted, c, w) {
                    continue;
                }
                // r = c ∧ part_cube(v, p): variable v narrowed to {p}, every
                // other variable untouched. Branch complements hold only
                // valid cubes, so r is valid exactly when c admits part p
                // (the legacy validity filter).
                if c[qw] & qb == 0 {
                    continue;
                }
                let base = out.len();
                out.extend_from_slice(c);
                for k in 0..qspan {
                    out[base + qfirst + k] &= !self.fd.masks[qstart + k];
                }
                out[base + qw] |= qb;
            }
        }
        out.extend_from_slice(&lifted);
        self.scc(out, scratch);
        scratch.give(lifted);
        for r in results {
            scratch.give(r);
        }
    }

    /// Whether the cover `f` covers the single cube `c` (tautology of the
    /// cofactor), mirroring the legacy `cover_covers_cube`.
    fn cover_covers_cube(&self, f: &[u64], c: &[u64], scratch: &mut MinimizeScratch) -> bool {
        let mut g = scratch.take();
        self.cofactor_all(f, c, &mut g);
        let taut = self.taut_rec(&g, scratch);
        scratch.give(g);
        taut
    }

    fn expand(&self, f: &mut AlignedWords, off: &[u64], scratch: &mut MinimizeScratch) {
        let w = self.w();
        let mut tmp = scratch.take();
        insertion_sort_chunks(f, w, &mut tmp, |a, b| chunk_parts(a) < chunk_parts(b));
        let n = f.len() / w;
        let mut covered = std::mem::take(&mut scratch.flags);
        covered.clear();
        covered.resize(n, false);
        let mut order = std::mem::take(&mut scratch.pairs);
        let mut result = scratch.take();
        let mut cand = tmp; // reuse the sort buffer for the growing cube
        for i in 0..n {
            if covered[i] {
                continue;
            }
            cand.clear();
            cand.extend_from_slice(&f[i * w..(i + 1) * w]);
            order.clear();
            for p in 0..self.fd.total_parts {
                let (pw, pb) = (p / 64, 1u64 << (p % 64));
                if cand[pw] & pb != 0 {
                    continue;
                }
                let weight = (0..n)
                    .filter(|&j| j != i && !covered[j] && f[j * w + pw] & pb != 0)
                    .count();
                order.push((p, weight));
            }
            sort_expand_order(&mut order);
            for &(p, _) in order.iter() {
                let (pw, pb) = (p / 64, 1u64 << (p % 64));
                cand[pw] |= pb;
                let legal = self.k.sweep_meets_all_invalid(self.fd, off, w, &cand);
                if !legal {
                    cand[pw] &= !pb;
                }
            }
            for j in 0..n {
                if j != i && !covered[j] && self.covers(&cand, &f[j * w..(j + 1) * w]) {
                    covered[j] = true;
                }
            }
            result.extend_from_slice(&cand);
        }
        std::mem::swap(f, &mut result);
        scratch.give(result);
        scratch.give(cand);
        scratch.pairs = order;
        scratch.flags = covered;
    }

    fn reduce(&self, f: &mut AlignedWords, dc: &[u64], scratch: &mut MinimizeScratch) {
        let w = self.w();
        let mut tmp = scratch.take();
        insertion_sort_chunks(f, w, &mut tmp, |a, b| chunk_parts(a) > chunk_parts(b));
        let n = f.len() / w;
        let mut c = tmp; // reuse: copy of the cube under reduction
        let mut rest = scratch.take();
        let mut g = scratch.take();
        let mut h = scratch.take();
        for i in 0..n {
            c.clear();
            c.extend_from_slice(&f[i * w..(i + 1) * w]);
            if self.k.is_zero(&c) {
                // legacy: the complement of the (empty) cofactored rest is
                // the universe with no scc pass, and the re-reduced cube
                // stays invalid — counter-identical shortcut.
                continue;
            }
            rest.clear();
            for j in 0..n {
                if j == i {
                    continue;
                }
                let chunk = &f[j * w..(j + 1) * w];
                if chunk.iter().any(|&x| x != 0) {
                    rest.extend_from_slice(chunk);
                }
            }
            rest.extend_from_slice(dc);
            g.clear();
            self.cofactor_all(&rest, &c, &mut g);
            h.clear();
            self.compl_rec(&g, &mut h, scratch);
            let fi = &mut f[i * w..(i + 1) * w];
            fi.fill(0);
            for chunk in h.chunks_exact(w) {
                self.k.or_acc(fi, chunk);
            }
            for k in 0..w {
                fi[k] &= c[k];
            }
            // h empty (fully redundant cube) or an invalid shrink both mark
            // the slot empty, as in the legacy supercube/is_valid match.
            if !cube_is_valid(self.fd, fi) {
                fi.fill(0);
            }
        }
        let mut write = 0usize;
        for i in 0..n {
            if f[i * w..(i + 1) * w].iter().any(|&x| x != 0) {
                f.copy_within(i * w..(i + 1) * w, write * w);
                write += 1;
            }
        }
        f.truncate(write * w);
        scratch.give(h);
        scratch.give(g);
        scratch.give(rest);
        scratch.give(c);
    }

    fn irredundant(&self, f: &mut AlignedWords, dc: &[u64], scratch: &mut MinimizeScratch) {
        let w = self.w();
        let mut tmp = scratch.take();
        insertion_sort_chunks(f, w, &mut tmp, |a, b| chunk_parts(a) > chunk_parts(b));
        scratch.give(tmp);
        let n = f.len() / w;
        let mut keep = std::mem::take(&mut scratch.flags);
        keep.clear();
        keep.resize(n, true);
        let mut rest = scratch.take();
        for i in (0..n).rev() {
            rest.clear();
            for j in 0..n {
                if j != i && keep[j] {
                    rest.extend_from_slice(&f[j * w..(j + 1) * w]);
                }
            }
            rest.extend_from_slice(dc);
            if self.cover_covers_cube(&rest, &f[i * w..(i + 1) * w], scratch) {
                keep[i] = false;
            }
        }
        let mut write = 0usize;
        for (i, &kept) in keep.iter().enumerate() {
            if kept {
                f.copy_within(i * w..(i + 1) * w, write * w);
                write += 1;
            }
        }
        f.truncate(write * w);
        scratch.give(rest);
        scratch.flags = keep;
    }

    fn essentials(
        &self,
        f: &[u64],
        dc: &[u64],
        out: &mut AlignedWords,
        scratch: &mut MinimizeScratch,
    ) {
        let w = self.w();
        let mut h = scratch.take();
        let mut hc = scratch.take();
        let n = f.len() / w;
        for i in 0..n {
            let c = &f[i * w..(i + 1) * w];
            h.clear();
            for j in 0..n {
                if j == i {
                    continue;
                }
                let g = &f[j * w..(j + 1) * w];
                match self.k.distance(self.fd, g, c) {
                    0 => h.extend_from_slice(g),
                    1 => self.push_consensus(g, c, &mut h),
                    _ => {}
                }
            }
            for g in dc.chunks_exact(w) {
                match self.k.distance(self.fd, g, c) {
                    0 => h.extend_from_slice(g),
                    1 => self.push_consensus(g, c, &mut h),
                    _ => {}
                }
            }
            hc.clear();
            self.cofactor_all(&h, c, &mut hc);
            if !self.taut_rec(&hc, scratch) {
                out.extend_from_slice(c);
            }
        }
        scratch.give(hc);
        scratch.give(h);
    }

    /// Last-gasp pass; replaces `f` and returns `true` when it found a
    /// strictly cheaper cover (mirrors the legacy `last_gasp`).
    fn gasp(
        &self,
        f: &mut AlignedWords,
        dc: &[u64],
        off: &[u64],
        scratch: &mut MinimizeScratch,
    ) -> bool {
        let w = self.w();
        let n = f.len() / w;
        if n < 2 {
            return false;
        }
        let mut reduced = scratch.take();
        let mut rest = scratch.take();
        let mut g = scratch.take();
        let mut h = scratch.take();
        for i in 0..n {
            let c = &f[i * w..(i + 1) * w];
            rest.clear();
            for j in 0..n {
                if j != i {
                    rest.extend_from_slice(&f[j * w..(j + 1) * w]);
                }
            }
            rest.extend_from_slice(dc);
            g.clear();
            self.cofactor_all(&rest, c, &mut g);
            h.clear();
            self.compl_rec(&g, &mut h, scratch);
            if h.is_empty() {
                continue; // fully redundant: maximally reduced away
            }
            let base = reduced.len();
            reduced.resize(base + w, 0);
            for chunk in h.chunks_exact(w) {
                self.k.or_acc(&mut reduced[base..base + w], chunk);
            }
            for k in 0..w {
                reduced[base + k] &= c[k];
            }
            if !cube_is_valid(self.fd, &reduced[base..base + w]) {
                reduced.truncate(base);
            }
        }
        scratch.give(h);
        scratch.give(g);
        scratch.give(rest);
        if reduced.is_empty() {
            scratch.give(reduced);
            return false;
        }
        let mut expanded = scratch.take();
        expanded.extend_from_slice(&reduced);
        self.expand(&mut expanded, off, scratch);
        let mut useful = scratch.take();
        for p in expanded.chunks_exact(w) {
            if reduced
                .chunks_exact(w)
                .filter(|r| self.covers(p, r))
                .count()
                >= 2
            {
                useful.extend_from_slice(p);
            }
        }
        scratch.give(expanded);
        if useful.is_empty() {
            scratch.give(useful);
            scratch.give(reduced);
            return false;
        }
        let mut candidate = scratch.take();
        candidate.extend_from_slice(f);
        candidate.extend_from_slice(&useful);
        self.irredundant(&mut candidate, dc, scratch);
        let better = self.cost(&candidate) < self.cost(f);
        if better {
            std::mem::swap(f, &mut candidate);
        }
        scratch.give(candidate);
        scratch.give(useful);
        scratch.give(reduced);
        better
    }

    /// Whether `f` covers every cube of `g`.
    fn contains_all(&self, f: &[u64], g: &[u64], scratch: &mut MinimizeScratch) -> bool {
        g.chunks_exact(self.w())
            .all(|c| self.cover_covers_cube(f, c, scratch))
    }

    /// Debug helper mirroring the legacy `implements` invariant:
    /// `on ⊆ f ⊆ on ∪ dc`.
    fn implements(
        &self,
        f: &[u64],
        on: &[u64],
        dc: &[u64],
        scratch: &mut MinimizeScratch,
    ) -> bool {
        let mut upper = scratch.take();
        upper.extend_from_slice(on);
        upper.extend_from_slice(dc);
        let ok =
            self.contains_all(f, on, scratch) && self.contains_all(&upper, f, scratch);
        scratch.give(upper);
        ok
    }
}

/// The full ESPRESSO loop over fixed-stride multi-word cube chunks — the
/// generic-rung counterpart of [`espresso_words`], mirroring
/// [`crate::espresso_bounded`] pass for pass: same span (`"espresso"`),
/// same `espresso.iter` budget ticks, same counter increments, same cube
/// orderings. Returns the minimized cover as a pool buffer (the caller
/// should [`MinimizeScratch::give`] it back) plus the budget completion.
fn espresso_chunks<S: Stride, K: Kern>(
    ctx: MvCtx<'_, S, K>,
    on: &[u64],
    dc: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    let span = obs::current_or(budget.recorder()).span("espresso");
    let _cur = obs::enter(span.recorder());

    if on.is_empty() {
        return (scratch.take(), budget.completion());
    }
    if !budget.tick("espresso.iter", 1) {
        // mirror the legacy degraded path: the on-set scc'd, nothing more
        let mut f = scratch.take();
        f.extend_from_slice(on);
        ctx.scc(&mut f, scratch);
        return (f, budget.completion());
    }

    let mut on_dc = scratch.take();
    on_dc.extend_from_slice(on);
    on_dc.extend_from_slice(dc);
    let mut off = scratch.take();
    ctx.compl_rec(&on_dc, &mut off, scratch);
    scratch.give(on_dc);
    if off.is_empty() {
        scratch.give(off);
        let mut f = scratch.take();
        f.extend_from_slice(ctx.full());
        return (f, budget.completion());
    }

    let mut f = scratch.take();
    f.extend_from_slice(on);
    ctx.scc(&mut f, scratch);
    obs::count(obs::Counter::ExpandCalls, 1);
    ctx.expand(&mut f, &off, scratch);
    obs::count(obs::Counter::IrredundantCalls, 1);
    ctx.irredundant(&mut f, dc, scratch);
    if opts.check_invariants {
        debug_assert!(
            ctx.implements(&f, on, dc, scratch),
            "flat espresso: invariant lost after initial expand/irredundant"
        );
    }

    let mut ess = scratch.take();
    let mut dc_aug = scratch.take();
    if opts.use_essentials {
        ctx.essentials(&f, dc, &mut ess, scratch);
        retain_chunks_not_in(&mut f, &ess, ctx.w());
        dc_aug.extend_from_slice(dc);
        dc_aug.extend_from_slice(&ess);
    } else {
        dc_aug.extend_from_slice(dc);
    }
    ctx.scc(&mut dc_aug, scratch);

    let mut best = ctx.cost(&f);
    let mut iterations = 0usize;
    let mut candidate = scratch.take();
    'outer: loop {
        while iterations < opts.max_iterations {
            if !budget.tick("espresso.iter", 1) {
                break 'outer;
            }
            iterations += 1;
            obs::count(obs::Counter::EspressoIters, 1);
            if f.is_empty() {
                break 'outer;
            }
            candidate.clear();
            candidate.extend_from_slice(&f);
            obs::count(obs::Counter::ReduceCalls, 1);
            ctx.reduce(&mut candidate, &dc_aug, scratch);
            obs::count(obs::Counter::ExpandCalls, 1);
            ctx.expand(&mut candidate, &off, scratch);
            obs::count(obs::Counter::IrredundantCalls, 1);
            ctx.irredundant(&mut candidate, &dc_aug, scratch);
            let c = ctx.cost(&candidate);
            if c < best {
                best = c;
                std::mem::swap(&mut f, &mut candidate);
            } else {
                break;
            }
        }
        if !opts.use_last_gasp || iterations >= opts.max_iterations || budget.is_exhausted() {
            break;
        }
        if !ctx.gasp(&mut f, &dc_aug, &off, scratch) {
            break;
        }
        best = ctx.cost(&f);
    }
    let _ = best;

    f.extend_from_slice(&ess);
    ctx.scc(&mut f, scratch);
    if opts.check_invariants {
        debug_assert!(
            ctx.implements(&f, on, dc, scratch),
            "flat espresso: result does not implement the function"
        );
    }
    scratch.give(candidate);
    scratch.give(dc_aug);
    scratch.give(ess);
    scratch.give(off);
    (f, budget.completion())
}

/// Runs the generic engine at the right stride rung for a fixed kernel
/// backend `k`: the 2/4-word register-blocked specializations, the
/// dynamic-stride fallback for wider domains. (The 1-word rung and the
/// inline binary engine never reach here — see [`run_words`].)
fn run_stride<K: Kern>(
    fd: &FlatDomain,
    k: K,
    on_w: &[u64],
    dc_w: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    match fd.words() {
        2 => espresso_chunks(MvCtx { fd, s: FixedW::<2>, k }, on_w, dc_w, opts, budget, scratch),
        4 => espresso_chunks(MvCtx { fd, s: FixedW::<4>, k }, on_w, dc_w, opts, budget, scratch),
        w => espresso_chunks(MvCtx { fd, s: DynW(w), k }, on_w, dc_w, opts, budget, scratch),
    }
}

/// [`run_stride`] with the Wide backend's kernels: AVX2 when the CPU has
/// it, the portable 4-lane fallback otherwise — bit-identical either way.
#[cfg(feature = "simd")]
fn run_stride_wide(
    fd: &FlatDomain,
    on_w: &[u64],
    dc_w: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_active() {
        return run_wide_kern(fd, simd::Avx2Kern, on_w, dc_w, opts, budget, scratch);
    }
    run_wide_kern(fd, simd::PortableKern, on_w, dc_w, opts, budget, scratch)
}

/// The Wide backend's rung selection for a concrete kernel. Three-word
/// domains are lifted to the monomorphized 4-word rung with a zero padding
/// word per cube — every kernel op becomes one straight-line 256-bit lane
/// instead of a runtime-length loop, and [`FlatDomain::padded_to`]
/// guarantees the padding never influences a result. The padding is
/// stripped again before returning, so callers only ever see the domain's
/// true stride.
#[cfg(feature = "simd")]
fn run_wide_kern<K: Kern>(
    fd: &FlatDomain,
    k: K,
    on_w: &[u64],
    dc_w: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    if fd.words() == 3 {
        let pfd = fd.padded_to(4);
        let mut on_p = scratch.take();
        pad_stride(on_w, 3, 4, &mut on_p);
        let mut dc_p = scratch.take();
        pad_stride(dc_w, 3, 4, &mut dc_p);
        let (fp, completion) = run_stride(&pfd, k, &on_p, &dc_p, opts, budget, scratch);
        let mut f = scratch.take();
        unpad_stride(&fp, 4, 3, &mut f);
        scratch.give(fp);
        scratch.give(dc_p);
        scratch.give(on_p);
        return (f, completion);
    }
    run_stride(fd, k, on_w, dc_w, opts, budget, scratch)
}

/// Re-strides `src` (cubes of `from` words) into `out` at `to` words per
/// cube, zero-filling the new trailing words.
#[cfg(feature = "simd")]
fn pad_stride(src: &[u64], from: usize, to: usize, out: &mut AlignedWords) {
    debug_assert!(out.is_empty() && from <= to);
    let cubes = src.len() / from;
    out.resize(cubes * to, 0);
    let dst = out.as_mut_slice();
    for (i, c) in src.chunks_exact(from).enumerate() {
        dst[i * to..i * to + from].copy_from_slice(c);
    }
}

/// Inverse of [`pad_stride`]: drops each cube's trailing padding words
/// (which the engine provably kept zero).
#[cfg(feature = "simd")]
fn unpad_stride(src: &[u64], from: usize, to: usize, out: &mut AlignedWords) {
    debug_assert!(out.is_empty() && to <= from);
    for c in src.chunks_exact(from) {
        debug_assert!(c[to..].iter().all(|&x| x == 0), "padding word disturbed");
        out.extend_from_slice(&c[..to]);
    }
}

/// Without the `simd` feature [`simd::selected_backend`] never resolves to
/// `Wide`, so this arm is unreachable; it routes to the scalar kernels to
/// stay total without a panic path.
#[cfg(not(feature = "simd"))]
fn run_stride_wide(
    fd: &FlatDomain,
    on_w: &[u64],
    dc_w: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    run_stride(fd, ScalarKern, on_w, dc_w, opts, budget, scratch)
}

/// Routes a word-form minimization to the right engine rung: the inline
/// single-word binary engine where it applies, otherwise the generic engine
/// monomorphized for 1/2/4-word strides with a dynamic-stride fallback.
/// Total — every domain is handled; nothing routes back to the legacy
/// driver (the [`obs::Counter::LegacyFallback`] tripwire stays at zero).
///
/// Multi-word rungs (stride ≥ 2) additionally dispatch on the selected
/// [`KernelBackend`]; the single-word rungs are pure register code with
/// nothing to vectorize and always run the scalar kernels. Each dispatched
/// run bumps [`obs::Counter::KernelDispatches`] plus exactly one of
/// [`obs::Counter::KernelWideCalls`] / [`obs::Counter::KernelScalarCalls`]
/// — the conservation the kernel counter tests pin down. Backend choice is
/// invisible to results: covers, counters, budget ticks, and traces are
/// bit-identical (`tests/prop_simd_kernels.rs`).
fn run_words(
    dom: &Domain,
    on_w: &[u64],
    dc_w: &[u64],
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (AlignedWords, Completion) {
    if flat_eligible(dom) {
        return espresso_words(BinCtx::new(dom), on_w, dc_w, opts, budget, scratch);
    }
    let fd = scratch.take_layout(dom);
    let out = if fd.words() == 1 {
        let ctx = MvCtx { fd: &fd, s: FixedW::<1>, k: ScalarKern };
        espresso_chunks(ctx, on_w, dc_w, opts, budget, scratch)
    } else {
        // `count_scoped`, not `count`: the dispatch happens before the
        // engine opens its "espresso" span, so with no caller-entered span
        // the bump must fall back to the budget-attached recorder.
        let rec = budget.recorder();
        obs::count_scoped(rec, obs::Counter::KernelDispatches, 1);
        match simd::selected_backend() {
            KernelBackend::Wide => {
                obs::count_scoped(rec, obs::Counter::KernelWideCalls, 1);
                run_stride_wide(&fd, on_w, dc_w, opts, budget, scratch)
            }
            KernelBackend::Scalar => {
                obs::count_scoped(rec, obs::Counter::KernelScalarCalls, 1);
                run_stride(&fd, ScalarKern, on_w, dc_w, opts, budget, scratch)
            }
        }
    };
    scratch.put_layout(dom, fd);
    out
}

/// Minimized cube count of `(on, dc)` on the flat engine — the word-form
/// fast path behind [`crate::cache::MinimizeCache`], skipping the `Cover`
/// rebuild of [`flat_espresso_bounded`] since only the length is needed.
pub(crate) fn flat_minimized_len(on: &Cover, dc: &Cover, scratch: &mut MinimizeScratch) -> usize {
    let dom = on.domain();
    let mut on_w = scratch.take();
    cover_to_words(on, &mut on_w);
    let mut dc_w = scratch.take();
    cover_to_words(dc, &mut dc_w);
    let (f, _) = run_words(
        dom,
        &on_w,
        &dc_w,
        &MinimizeOptions::default(),
        &Budget::unlimited(),
        scratch,
    );
    let n = f.len() / dom.words();
    scratch.give(f);
    scratch.give(dc_w);
    scratch.give(on_w);
    n
}

/// Copies a cover's cubes into a flat word buffer of the domain's stride.
pub(crate) fn cover_to_words(cover: &Cover, out: &mut AlignedWords) {
    debug_assert!(out.is_empty());
    for c in cover.iter() {
        out.extend_from_slice(c.words());
    }
}

fn words_to_cover(dom: &Domain, words: &[u64]) -> Cover {
    Cover::from_cubes(
        dom,
        words
            .chunks_exact(dom.words())
            .map(|c| Cube::from_raw_words(c.to_vec())),
    )
}

/// Allocation-free ESPRESSO under a budget, on **every** domain. Eligible
/// all-binary domains (see [`flat_eligible`]) take the inline single-word
/// engine; everything else takes the generic multi-word engine at its
/// stride's specialization rung. Bit-identical to the legacy
/// [`crate::espresso_bounded`] in all cases — and never calls it.
pub fn flat_espresso_bounded(
    on: &Cover,
    dc: &Cover,
    opts: &MinimizeOptions,
    budget: &Budget,
    scratch: &mut MinimizeScratch,
) -> (Cover, Completion) {
    let dom = on.domain();
    assert_eq!(dom, dc.domain(), "espresso: domain mismatch");
    let mut on_w = scratch.take();
    cover_to_words(on, &mut on_w);
    let mut dc_w = scratch.take();
    cover_to_words(dc, &mut dc_w);
    let (fw, completion) = run_words(dom, &on_w, &dc_w, opts, budget, scratch);
    let cover = words_to_cover(dom, &fw);
    scratch.give(fw);
    scratch.give(dc_w);
    scratch.give(on_w);
    (cover, completion)
}

/// [`flat_espresso_bounded`] with default options, an unlimited budget, and
/// a one-shot scratch — the flat counterpart of [`crate::espresso`].
pub fn flat_espresso(on: &Cover, dc: &Cover) -> Cover {
    flat_espresso_with(on, dc, &MinimizeOptions::default())
}

/// [`flat_espresso_bounded`] with an unlimited budget and a one-shot
/// scratch — the flat counterpart of [`crate::espresso_with`].
pub fn flat_espresso_with(on: &Cover, dc: &Cover, opts: &MinimizeOptions) -> Cover {
    let mut scratch = MinimizeScratch::new();
    flat_espresso_bounded(on, dc, opts, &Budget::unlimited(), &mut scratch).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::cube::Cube;
    use crate::domain::Domain;
    use crate::espresso::espresso;

    fn cover_from_codes(dom: &Domain, nv: usize, codes: &[u32]) -> Cover {
        let mut c = Cover::empty(dom);
        for &code in codes {
            let mut cube = Cube::full(dom);
            for v in 0..nv {
                cube.restrict_binary(dom, v, code >> v & 1 != 0);
            }
            c.push(cube);
        }
        c
    }

    #[test]
    fn eligibility_requires_all_binary_single_word() {
        assert!(flat_eligible(&Domain::binary(1)));
        assert!(flat_eligible(&Domain::binary(32)));
        assert!(!flat_eligible(&Domain::binary(33)));
    }

    #[test]
    fn flat_matches_legacy_on_minterm_covers() {
        let dom = Domain::binary(4);
        let on = cover_from_codes(&dom, 4, &[0, 1, 2, 3, 8, 9]);
        let dc = cover_from_codes(&dom, 4, &[10, 11]);
        let legacy = espresso(&on, &dc);
        let flat = flat_espresso(&on, &dc);
        assert_eq!(legacy, flat);
    }

    #[test]
    fn flat_cover_roundtrips() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 3, 5]);
        let fc = FlatCover::from_cover(&on);
        assert_eq!(fc.len(), 3);
        assert_eq!(fc.stride(), 1);
        assert_eq!(fc.to_cover(&dom), on);
    }

    #[test]
    fn generic_kernels_match_cube_ops() {
        let dom = Domain::binary(3);
        let fd = FlatDomain::new(&dom);
        let mut a = Cube::full(&dom);
        a.restrict_binary(&dom, 0, true);
        let mut b = Cube::full(&dom);
        b.restrict_binary(&dom, 0, false);
        assert!(cube_is_valid(&fd, a.words()));
        assert_eq!(
            cube_distance(&fd, a.words(), b.words()),
            a.distance(&b, &dom)
        );
        let mut out = vec![0u64; fd.words()];
        assert!(cube_consensus_into(&fd, a.words(), b.words(), &mut out));
        let cons = a.consensus(&b, &dom).expect("distance 1");
        assert_eq!(out.as_slice(), cons.words());
    }

    #[test]
    fn empty_on_set_minimizes_to_empty() {
        let dom = Domain::binary(2);
        let on = Cover::empty(&dom);
        let dc = Cover::empty(&dom);
        assert!(flat_espresso(&on, &dc).is_empty());
    }

    #[test]
    fn universe_collapses_to_single_full_cube() {
        let dom = Domain::binary(2);
        let on = cover_from_codes(&dom, 2, &[0, 1, 2, 3]);
        let dc = Cover::empty(&dom);
        let flat = flat_espresso(&on, &dc);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat, espresso(&on, &dc));
    }

    #[test]
    fn flat_matches_legacy_on_multi_valued_domain() {
        // 5 + 3 + 2 parts in one word, but multi-valued: generic 1-word rung.
        let dom = crate::domain::DomainBuilder::new()
            .multi("a", 5)
            .multi("b", 3)
            .binary("c")
            .build();
        assert!(!flat_eligible(&dom));
        let mut on = Cover::empty(&dom);
        for (a, b, c) in [(0, 0, false), (1, 0, false), (0, 1, false), (2, 2, true), (3, 2, true)]
        {
            let mut cube = Cube::full(&dom);
            cube.restrict(&dom, 0, a);
            cube.restrict(&dom, 1, b);
            cube.restrict_binary(&dom, 2, c);
            on.push(cube);
        }
        let mut dc = Cover::empty(&dom);
        let mut d0 = Cube::full(&dom);
        d0.restrict(&dom, 0, 4);
        dc.push(d0);
        assert_eq!(espresso(&on, &dc), flat_espresso(&on, &dc));
    }

    fn sparse_binary_cover(dom: &Domain, nv: usize, extra: usize) -> (Cover, Cover) {
        let mut on = Cover::empty(dom);
        for code in 0..6u32 {
            let mut cube = Cube::full(dom);
            for v in 0..3.min(nv) {
                cube.restrict_binary(dom, v, code >> v & 1 != 0);
            }
            cube.restrict_binary(dom, extra, code % 2 == 0);
            on.push(cube);
        }
        let mut dc = Cover::empty(dom);
        let mut d = Cube::full(dom);
        d.restrict_binary(dom, extra, true);
        d.restrict_binary(dom, 0, true);
        dc.push(d);
        (on, dc)
    }

    #[test]
    fn flat_matches_legacy_on_two_word_domain() {
        let dom = Domain::binary(33);
        assert_eq!(dom.words(), 2);
        let (on, dc) = sparse_binary_cover(&dom, 33, 32);
        assert_eq!(espresso(&on, &dc), flat_espresso(&on, &dc));
    }

    #[test]
    fn flat_matches_legacy_on_four_word_domain() {
        let dom = Domain::binary(100);
        assert_eq!(dom.words(), 4);
        let (on, dc) = sparse_binary_cover(&dom, 100, 99);
        assert_eq!(espresso(&on, &dc), flat_espresso(&on, &dc));
    }

    #[test]
    fn flat_matches_legacy_on_dynamic_stride_domain() {
        // 140 binary vars → 280 parts → 5 words: the DynW fallback rung.
        let dom = Domain::binary(140);
        assert_eq!(dom.words(), 5);
        let (on, dc) = sparse_binary_cover(&dom, 140, 139);
        assert_eq!(espresso(&on, &dc), flat_espresso(&on, &dc));
    }

    #[test]
    fn flat_matches_legacy_on_multi_word_multi_valued_domain() {
        // A 9-part state variable plus 60 binary vars: 129 parts, 3 words,
        // mixed part widths — the shape face-constraint extraction produces.
        let dom = crate::domain::DomainBuilder::new()
            .multi("s", 9)
            .binaries("x", 60)
            .build();
        assert_eq!(dom.words(), 3);
        let mut on = Cover::empty(&dom);
        for (s, x0) in [(0, false), (1, false), (2, true), (5, true), (8, false)] {
            let mut cube = Cube::full(&dom);
            cube.restrict(&dom, 0, s);
            cube.restrict_binary(&dom, 1, x0);
            cube.restrict_binary(&dom, 60, !x0);
            on.push(cube);
        }
        let mut dc = Cover::empty(&dom);
        let mut d = Cube::full(&dom);
        d.restrict(&dom, 0, 7);
        dc.push(d);
        assert_eq!(espresso(&on, &dc), flat_espresso(&on, &dc));
    }
}
