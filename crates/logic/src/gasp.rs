//! LAST_GASP: ESPRESSO's escape from local minima.
//!
//! When the REDUCE/EXPAND/IRREDUNDANT loop stops improving, LAST_GASP
//! reduces each cube *individually* against the full cover (maximal
//! reduction, independent of processing order), expands those reduced cubes
//! against the off-set, and if any expansion covers two or more original
//! cubes, splices the newcomers in and lets IRREDUNDANT settle the result.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::expand::expand;
use crate::irredundant::irredundant;
use crate::urp::complement;

/// One LAST_GASP attempt. Returns `Some(better)` when a cheaper cover was
/// found, `None` when the local minimum survives.
pub fn last_gasp(f: &Cover, dc: &Cover, off: &Cover) -> Option<Cover> {
    let dom = f.domain();
    assert_eq!(dom, dc.domain(), "last_gasp: domain mismatch");
    if f.len() < 2 {
        return None;
    }

    // Maximal independent reduction of every cube.
    let mut reduced: Vec<Cube> = Vec::with_capacity(f.len());
    for (i, c) in f.iter().enumerate() {
        let rest = Cover::from_cubes(
            dom,
            f.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, x)| x.clone())
                .chain(dc.iter().cloned()),
        );
        let g = rest.cofactor(c);
        let h = complement(&g);
        match h.supercube() {
            None => continue, // fully redundant cube: nothing essential left
            Some(sc) => {
                let r = c.and(&sc);
                if r.is_valid(dom) {
                    reduced.push(r);
                }
            }
        }
    }
    if reduced.is_empty() {
        return None;
    }

    // Expand the reduced cubes; keep those whose prime covers >= 2 of them.
    let reduced_cover = Cover::from_cubes(dom, reduced.clone());
    let expanded = expand(&reduced_cover, off);
    let useful: Vec<Cube> = expanded
        .iter()
        .filter(|p| reduced.iter().filter(|r| p.covers(r)).count() >= 2)
        .cloned()
        .collect();
    if useful.is_empty() {
        return None;
    }

    let mut candidate = f.clone();
    for c in useful {
        candidate.push(c);
    }
    let candidate = irredundant(&candidate, dc);
    if (candidate.len(), candidate.literal_cost()) < (f.len(), f.literal_cost()) {
        Some(candidate)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::equiv::implements;
    use crate::espresso::espresso;

    #[test]
    fn gasp_preserves_the_function() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "110- 1-01 0-11 -010 1110");
        let dc = Cover::empty(&dom);
        let off = complement(&on);
        let f = espresso(&on, &dc);
        if let Some(better) = last_gasp(&f, &dc, &off) {
            assert!(implements(&better, &on, &dc));
            assert!(better.len() <= f.len());
        }
    }

    #[test]
    fn gasp_on_tiny_covers_is_noop() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "11");
        let off = complement(&f);
        assert!(last_gasp(&f, &Cover::empty(&dom), &off).is_none());
    }

    #[test]
    fn gasp_never_returns_a_worse_cover() {
        let dom = Domain::binary(4);
        for text in ["11-- --11 1-1- -1-1", "1100 0011 1111 10-0"] {
            let on = Cover::parse(&dom, text);
            let dc = Cover::empty(&dom);
            let off = complement(&on);
            let f = espresso(&on, &dc);
            if let Some(better) = last_gasp(&f, &dc, &off) {
                assert!(
                    (better.len(), better.literal_cost()) < (f.len(), f.literal_cost()),
                    "{text}"
                );
                assert!(implements(&better, &on, &dc));
            }
        }
    }
}
