//! Runtime-dispatched wide kernel backend for the flat engine.
//!
//! The flat ESPRESSO engine (PR 7) reduced every cover operation to loops
//! over contiguous `u64` cube chunks of a fixed stride — exactly the shape
//! 256-bit vector units want. This module supplies those word kernels in
//! three interchangeable implementations:
//!
//! * **scalar** — the original word-at-a-time loops, byte-for-byte the
//!   expressions the engine used before this module existed. This is the
//!   reference implementation and the A/B baseline.
//! * **portable wide** — 4-lane (`[u64; 4]`) unrolled loops that compile on
//!   every target and give LLVM a straight-line reduction to auto-vectorize.
//! * **AVX2** — `core::arch::x86_64` intrinsics (256-bit blocks with a
//!   128-bit SSE tail), selected at run time behind a cached
//!   `is_x86_feature_detected!("avx2")` check. Loads are unaligned
//!   (`loadu`): cube offsets inside a cover are stride-aligned, not
//!   32-byte-aligned, at stride 2.
//!
//! ## Backend selection
//!
//! [`KernelBackend`] has exactly two values — `Scalar` and `Wide` — and is
//! resolved by [`selected_backend`] in priority order:
//!
//! 1. a thread-local override installed by [`set_backend_override`] (tests
//!    and the `kernel_ab` bench leg use this to pin each leg's backend);
//! 2. the `PICOLA_SIMD` environment variable (`scalar` or `wide`), read
//!    once per process;
//! 3. the default: `Wide` when the `simd` cargo feature is on, `Scalar`
//!    otherwise.
//!
//! Without the `simd` feature the wide kernels are not compiled at all and
//! every resolution collapses to `Scalar` — requesting `wide` via the
//! environment or the override is then a documented no-op, so callers never
//! need cfg gates. Whether a resolved `Wide` runs the AVX2 or the portable
//! lanes is a per-process hardware fact ([`avx2_active`]), invisible to
//! results.
//!
//! ## Bit-identity contract
//!
//! Every kernel here computes a *pure function of its word inputs* — a
//! boolean, a count, or an output buffer — and all three implementations
//! return identical values for identical inputs. The flat engine routes
//! only such leaf predicates through the backend; loop structure, cube
//! orderings, budget ticks, and [`crate::obs`] counters stay in the engine
//! and are therefore backend-invariant. That makes covers, completions,
//! and traces bit-identical across backends, which is load-bearing:
//! [`crate::cache::MinimizeCache`] and the server's `GlobalMinimizeCache`
//! key on exact cover bytes, golden tables pin trace renders, and the
//! legacy/SAT oracles compare exact covers. `tests/prop_simd_kernels.rs`
//! enforces the contract end to end.
//!
//! ## Alignment
//!
//! [`AlignedWords`] is the growable word buffer backing
//! [`crate::MinimizeScratch`] pools and [`crate::FlatCover`] stores: its
//! allocation is always 64-byte aligned (backed by `#[repr(align(64))]`
//! cache lines), so a cube at word offset 0 starts a cache line and wide
//! loads of 1/2/4-word cubes never straddle one.

use crate::flat::FlatDomain;
use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// Which kernel implementation family the flat engine dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The original word-at-a-time loops (reference + A/B baseline).
    Scalar,
    /// The vectorized kernels: AVX2 where detected, the portable 4-lane
    /// unrolled fallback everywhere else. Requires the `simd` cargo
    /// feature; without it this resolves to `Scalar`.
    Wide,
}

thread_local! {
    /// Per-thread backend override (tests / bench legs). Thread-local so
    /// parallel test threads pinning different backends never race.
    static BACKEND_OVERRIDE: Cell<Option<KernelBackend>> = const { Cell::new(None) };
}

/// Pins this thread's kernel backend (`Some`) or restores env/default
/// resolution (`None`). Returns the previous override so callers can nest:
///
/// ```
/// use picola_logic::simd::{set_backend_override, KernelBackend};
/// let prev = set_backend_override(Some(KernelBackend::Scalar));
/// // ... run a scalar-pinned leg ...
/// set_backend_override(prev);
/// ```
pub fn set_backend_override(backend: Option<KernelBackend>) -> Option<KernelBackend> {
    BACKEND_OVERRIDE.with(|b| b.replace(backend))
}

/// The process-wide `PICOLA_SIMD` request (`scalar`/`wide`/`portable`),
/// read once. Unset or unrecognized values mean "no request"; `portable`
/// requests Wide with the AVX2 lanes masked off (see [`avx2_active`]), so
/// the portable fallback is testable on x86_64 hosts too.
fn env_backend() -> Option<KernelBackend> {
    static ENV: OnceLock<Option<KernelBackend>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("PICOLA_SIMD").ok().as_deref() {
        Some("scalar") => Some(KernelBackend::Scalar),
        Some("wide") | Some("portable") => Some(KernelBackend::Wide),
        _ => None,
    })
}

/// Whether `PICOLA_SIMD=portable` masked the AVX2 lanes off (read once).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_masked_off() -> bool {
    static MASKED: OnceLock<bool> = OnceLock::new();
    *MASKED.get_or_init(|| std::env::var("PICOLA_SIMD").ok().as_deref() == Some("portable"))
}

/// Resolves the active kernel backend: thread-local override, then the
/// `PICOLA_SIMD` environment variable, then the default (`Wide` with the
/// `simd` cargo feature, `Scalar` without). Without the feature the wide
/// kernels are not compiled, so every request degrades to `Scalar`.
pub fn selected_backend() -> KernelBackend {
    let requested = BACKEND_OVERRIDE
        .with(Cell::get)
        .or_else(env_backend)
        .unwrap_or(KernelBackend::Wide);
    if cfg!(feature = "simd") {
        requested
    } else {
        KernelBackend::Scalar
    }
}

/// Whether the Wide backend runs the AVX2 kernels on this machine (cached
/// runtime detection). `false` on non-x86_64 targets, without the `simd`
/// feature, when the CPU lacks AVX2, or under `PICOLA_SIMD=portable` — the
/// Wide backend then uses the portable 4-lane fallback. Diagnostic only:
/// results never depend on it.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn avx2_active() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2") && !avx2_masked_off())
}

/// Whether the Wide backend runs the AVX2 kernels on this machine — always
/// `false` on this target/feature combination (the portable fallback, or no
/// wide kernels at all without the `simd` feature).
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub fn avx2_active() -> bool {
    false
}

// ---------------------------------------------------------------------------
// The kernel trait: the leaf word ops the flat engine routes per backend
// ---------------------------------------------------------------------------

/// The word-kernel vtable-free dispatch trait: one zero-sized implementor
/// per backend, threaded through `MvCtx` as a type parameter so each engine
/// rung monomorphizes straight-line kernels. Every method is a pure
/// function of its inputs and all implementations agree bit for bit.
pub(crate) trait Kern: Copy {
    /// Whether cube `a` contains (covers) cube `b`: `b & !a == 0` per word.
    fn covers(self, a: &[u64], b: &[u64]) -> bool;
    /// Exact word equality of two cubes.
    fn slices_eq(self, a: &[u64], b: &[u64]) -> bool;
    /// Whether every word of `c` is zero.
    fn is_zero(self, c: &[u64]) -> bool;
    /// OR-fold of all words — the scc signature.
    fn fold_or(self, c: &[u64]) -> u64;
    /// `dst |= src` per word.
    fn or_acc(self, dst: &mut [u64], src: &[u64]);
    /// `out = a & b` per word (the cube meet).
    fn and_into(self, out: &mut [u64], a: &[u64], b: &[u64]);
    /// The general cofactor body: `out = (x | !p) & full` per word.
    fn cofactor_into(self, out: &mut [u64], x: &[u64], p: &[u64], full: &[u64]);
    /// Whether the meet `a ∧ b` is a valid cube (no variable's literal
    /// empty) — the distance-0 test.
    fn meet_valid(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> bool;
    /// Number of variables whose literal is empty in the meet — the
    /// classic cube distance.
    fn distance(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize;

    /// The expand legality sweep: whether the meet of `a` with **every**
    /// cube of `list` (stride `w`) is invalid. Semantically exactly
    /// `list.chunks_exact(w).all(|o| !self.meet_valid(fd, a, o))` — the
    /// sweep is counter-free, so wide backends may restructure the whole
    /// loop (amortizing per-call dispatch, keeping `a` in registers) as
    /// long as the boolean answer is identical.
    fn sweep_meets_all_invalid(self, fd: &FlatDomain, list: &[u64], w: usize, a: &[u64]) -> bool {
        list.chunks_exact(w).all(|o| !self.meet_valid(fd, a, o))
    }
}

/// The scalar backend: the engine's original word loops, verbatim.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScalarKern;

impl Kern for ScalarKern {
    #[inline]
    fn covers(self, a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(&x, &y)| y & !x == 0)
    }

    #[inline]
    fn slices_eq(self, a: &[u64], b: &[u64]) -> bool {
        a == b
    }

    #[inline]
    fn is_zero(self, c: &[u64]) -> bool {
        c.iter().all(|&x| x == 0)
    }

    #[inline]
    fn fold_or(self, c: &[u64]) -> u64 {
        c.iter().fold(0u64, |acc, &x| acc | x)
    }

    #[inline]
    fn or_acc(self, dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    #[inline]
    fn and_into(self, out: &mut [u64], a: &[u64], b: &[u64]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x & y;
        }
    }

    #[inline]
    fn cofactor_into(self, out: &mut [u64], x: &[u64], p: &[u64], full: &[u64]) {
        for k in 0..out.len() {
            out[k] = (x[k] | !p[k]) & full[k];
        }
    }

    #[inline]
    fn meet_valid(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> bool {
        (0..fd.num_vars()).all(|v| !fd.meet_var_empty(a, b, v))
    }

    #[inline]
    fn distance(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize {
        (0..fd.num_vars())
            .filter(|&v| fd.meet_var_empty(a, b, v))
            .count()
    }
}

/// Stack buffer for materialized meets in the wide `meet_valid`/`distance`
/// kernels. Narrow strides stay on the scalar per-variable short-circuit
/// walk — at a handful of words the materialize-then-walk form costs more
/// than it saves (an extra store/load round trip, and for AVX2 an
/// un-inlinable `target_feature` call) — so only strides past the widest
/// monomorphized rung take the vector path, and only up to this bound.
#[cfg(feature = "simd")]
const MEET_BUF_WORDS: usize = 16;

/// Narrowest stride at which materializing the meet beats the scalar walk.
#[cfg(feature = "simd")]
const MEET_MATERIALIZE_MIN: usize = 5;

/// Wide `meet_valid`: the scalar short-circuit walk at narrow strides, the
/// materialized-meet form (one vector AND, then a single-operand masked
/// walk) where cubes are wide enough to pay for it.
#[cfg(feature = "simd")]
#[inline]
fn wide_meet_valid<K: Kern>(k: K, fd: &FlatDomain, a: &[u64], b: &[u64]) -> bool {
    let w = a.len();
    if (MEET_MATERIALIZE_MIN..=MEET_BUF_WORDS).contains(&w) {
        let mut m = [0u64; MEET_BUF_WORDS];
        k.and_into(&mut m[..w], a, b);
        fd.meet_all_vars_nonempty(&m[..w])
    } else {
        (0..fd.num_vars()).all(|v| !fd.meet_var_empty(a, b, v))
    }
}

/// Wide `distance`: materialized-meet counterpart of [`wide_meet_valid`].
#[cfg(feature = "simd")]
#[inline]
fn wide_distance<K: Kern>(k: K, fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize {
    let w = a.len();
    if (MEET_MATERIALIZE_MIN..=MEET_BUF_WORDS).contains(&w) {
        let mut m = [0u64; MEET_BUF_WORDS];
        k.and_into(&mut m[..w], a, b);
        fd.meet_empty_vars(&m[..w])
    } else {
        (0..fd.num_vars())
            .filter(|&v| fd.meet_var_empty(a, b, v))
            .count()
    }
}

/// Stride-monomorphized body of the wide legality sweep: for each cube of
/// `list`, materialize the meet with `a` as one `W`-word block and test
/// each variable's full-stride mask ([`FlatDomain::var_masks`]) against it
/// — `acc == 0` is exactly "the variable's literal is empty in the meet".
/// Branch-free inner reductions keep the block in vector registers; the
/// early returns mirror the scalar form's short-circuits bit for bit.
#[cfg(feature = "simd")]
#[inline(always)]
fn sweep_body_fixed<const W: usize>(var_masks: &[u64], list: &[u64], a: &[u64]) -> bool {
    let mut av = [0u64; W];
    av.copy_from_slice(&a[..W]);
    'cubes: for o in list.chunks_exact(W) {
        let mut m = [0u64; W];
        for k in 0..W {
            m[k] = av[k] & o[k];
        }
        for vm in var_masks.chunks_exact(W) {
            let mut acc = 0u64;
            for k in 0..W {
                acc |= m[k] & vm[k];
            }
            if acc == 0 {
                continue 'cubes; // some literal empty: this meet is invalid
            }
        }
        return false; // every literal non-empty: a valid meet exists
    }
    true
}

/// Runtime-stride fallback of [`sweep_body_fixed`] for rungs without a
/// monomorphized width.
#[cfg(feature = "simd")]
#[inline]
fn sweep_body_dyn(var_masks: &[u64], list: &[u64], w: usize, a: &[u64]) -> bool {
    'cubes: for o in list.chunks_exact(w) {
        for vm in var_masks.chunks_exact(w) {
            let mut acc = 0u64;
            for k in 0..w {
                acc |= a[k] & o[k] & vm[k];
            }
            if acc == 0 {
                continue 'cubes;
            }
        }
        return false;
    }
    true
}

/// Width dispatch for the wide legality sweep — the strides the engine's
/// rungs actually produce get the monomorphized body. `inline(always)` so
/// the bodies land inside the AVX2 `target_feature` wrapper and pick up
/// its codegen.
#[cfg(feature = "simd")]
#[inline(always)]
fn wide_sweep_meets_all_invalid(fd: &FlatDomain, list: &[u64], w: usize, a: &[u64]) -> bool {
    let var_masks = fd.var_masks();
    match w {
        2 => sweep_body_fixed::<2>(var_masks, list, a),
        4 => sweep_body_fixed::<4>(var_masks, list, a),
        8 => sweep_body_fixed::<8>(var_masks, list, a),
        _ => sweep_body_dyn(var_masks, list, w, a),
    }
}

/// The portable wide backend: 4-lane unrolled loops, compiled everywhere.
#[cfg(feature = "simd")]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PortableKern;

#[cfg(feature = "simd")]
impl Kern for PortableKern {
    #[inline]
    fn covers(self, a: &[u64], b: &[u64]) -> bool {
        portable::covers(a, b)
    }

    #[inline]
    fn slices_eq(self, a: &[u64], b: &[u64]) -> bool {
        portable::slices_eq(a, b)
    }

    #[inline]
    fn is_zero(self, c: &[u64]) -> bool {
        portable::is_zero(c)
    }

    #[inline]
    fn fold_or(self, c: &[u64]) -> u64 {
        portable::fold_or(c)
    }

    #[inline]
    fn or_acc(self, dst: &mut [u64], src: &[u64]) {
        portable::or_acc(dst, src);
    }

    #[inline]
    fn and_into(self, out: &mut [u64], a: &[u64], b: &[u64]) {
        portable::and_into(out, a, b);
    }

    #[inline]
    fn cofactor_into(self, out: &mut [u64], x: &[u64], p: &[u64], full: &[u64]) {
        portable::cofactor_into(out, x, p, full);
    }

    #[inline]
    fn meet_valid(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> bool {
        wide_meet_valid(self, fd, a, b)
    }

    #[inline]
    fn distance(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize {
        wide_distance(self, fd, a, b)
    }

    #[inline]
    fn sweep_meets_all_invalid(self, fd: &FlatDomain, list: &[u64], w: usize, a: &[u64]) -> bool {
        wide_sweep_meets_all_invalid(fd, list, w, a)
    }
}

/// The AVX2 backend: 256-bit blocks with a 128-bit tail, unaligned loads.
/// Constructed only after [`avx2_active`] returned `true`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Debug, Clone, Copy)]
pub(crate) struct Avx2Kern;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl Kern for Avx2Kern {
    #[inline]
    fn covers(self, a: &[u64], b: &[u64]) -> bool {
        // SAFETY: Avx2Kern is only constructed behind `avx2_active()`.
        unsafe { avx2::covers(a, b) }
    }

    #[inline]
    fn slices_eq(self, a: &[u64], b: &[u64]) -> bool {
        // SAFETY: as above.
        unsafe { avx2::slices_eq(a, b) }
    }

    #[inline]
    fn is_zero(self, c: &[u64]) -> bool {
        // SAFETY: as above.
        unsafe { avx2::is_zero(c) }
    }

    #[inline]
    fn fold_or(self, c: &[u64]) -> u64 {
        // SAFETY: as above.
        unsafe { avx2::fold_or(c) }
    }

    #[inline]
    fn or_acc(self, dst: &mut [u64], src: &[u64]) {
        // SAFETY: as above.
        unsafe { avx2::or_acc(dst, src) }
    }

    #[inline]
    fn and_into(self, out: &mut [u64], a: &[u64], b: &[u64]) {
        // SAFETY: as above.
        unsafe { avx2::and_into(out, a, b) }
    }

    #[inline]
    fn cofactor_into(self, out: &mut [u64], x: &[u64], p: &[u64], full: &[u64]) {
        // SAFETY: as above.
        unsafe { avx2::cofactor_into(out, x, p, full) }
    }

    #[inline]
    fn meet_valid(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> bool {
        wide_meet_valid(self, fd, a, b)
    }

    #[inline]
    fn distance(self, fd: &FlatDomain, a: &[u64], b: &[u64]) -> usize {
        wide_distance(self, fd, a, b)
    }

    #[inline]
    fn sweep_meets_all_invalid(self, fd: &FlatDomain, list: &[u64], w: usize, a: &[u64]) -> bool {
        // SAFETY: Avx2Kern is only constructed behind `avx2_active()`.
        unsafe { avx2::sweep_meets_all_invalid(fd, list, w, a) }
    }
}

// ---------------------------------------------------------------------------
// Portable 4-lane kernels
// ---------------------------------------------------------------------------

#[cfg(feature = "simd")]
mod portable {
    //! `[u64; 4]` lane-unrolled kernels: branch-free reductions LLVM can
    //! keep in vector registers on any target.

    #[inline]
    pub(super) fn covers(a: &[u64], b: &[u64]) -> bool {
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let mut acc = 0u64;
        for (x, y) in (&mut ca).zip(&mut cb) {
            acc |= (y[0] & !x[0]) | (y[1] & !x[1]) | (y[2] & !x[2]) | (y[3] & !x[3]);
        }
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            acc |= y & !x;
        }
        acc == 0
    }

    #[inline]
    pub(super) fn slices_eq(a: &[u64], b: &[u64]) -> bool {
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let mut acc = 0u64;
        for (x, y) in (&mut ca).zip(&mut cb) {
            acc |= (x[0] ^ y[0]) | (x[1] ^ y[1]) | (x[2] ^ y[2]) | (x[3] ^ y[3]);
        }
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            acc |= x ^ y;
        }
        acc == 0 && a.len() == b.len()
    }

    #[inline]
    pub(super) fn is_zero(c: &[u64]) -> bool {
        fold_or(c) == 0
    }

    #[inline]
    pub(super) fn fold_or(c: &[u64]) -> u64 {
        let mut chunks = c.chunks_exact(4);
        let mut l = [0u64; 4];
        for x in &mut chunks {
            l[0] |= x[0];
            l[1] |= x[1];
            l[2] |= x[2];
            l[3] |= x[3];
        }
        let mut acc = (l[0] | l[1]) | (l[2] | l[3]);
        for &x in chunks.remainder() {
            acc |= x;
        }
        acc
    }

    #[inline]
    pub(super) fn or_acc(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let blocks = n / 4 * 4;
        let mut i = 0;
        while i < blocks {
            dst[i] |= src[i];
            dst[i + 1] |= src[i + 1];
            dst[i + 2] |= src[i + 2];
            dst[i + 3] |= src[i + 3];
            i += 4;
        }
        while i < n {
            dst[i] |= src[i];
            i += 1;
        }
    }

    #[inline]
    pub(super) fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) {
        let n = out.len();
        let blocks = n / 4 * 4;
        let mut i = 0;
        while i < blocks {
            out[i] = a[i] & b[i];
            out[i + 1] = a[i + 1] & b[i + 1];
            out[i + 2] = a[i + 2] & b[i + 2];
            out[i + 3] = a[i + 3] & b[i + 3];
            i += 4;
        }
        while i < n {
            out[i] = a[i] & b[i];
            i += 1;
        }
    }

    #[inline]
    pub(super) fn cofactor_into(out: &mut [u64], x: &[u64], p: &[u64], full: &[u64]) {
        let n = out.len();
        let blocks = n / 4 * 4;
        let mut i = 0;
        while i < blocks {
            out[i] = (x[i] | !p[i]) & full[i];
            out[i + 1] = (x[i + 1] | !p[i + 1]) & full[i + 1];
            out[i + 2] = (x[i + 2] | !p[i + 2]) & full[i + 2];
            out[i + 3] = (x[i + 3] | !p[i + 3]) & full[i + 3];
            i += 4;
        }
        while i < n {
            out[i] = (x[i] | !p[i]) & full[i];
            i += 1;
        }
    }

    #[inline]
    pub(super) fn disjoint(a: &[u64], b: &[u64]) -> bool {
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let mut acc = 0u64;
        for (x, y) in (&mut ca).zip(&mut cb) {
            acc |= (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]);
        }
        for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
            acc |= x & y;
        }
        acc == 0
    }

    #[inline]
    pub(super) fn union_into(dst: &mut [u64], src: &[u64]) {
        or_acc(dst, src);
    }

    #[inline]
    pub(super) fn intersect_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let blocks = n / 4 * 4;
        let mut i = 0;
        while i < blocks {
            dst[i] &= src[i];
            dst[i + 1] &= src[i + 1];
            dst[i + 2] &= src[i + 2];
            dst[i + 3] &= src[i + 3];
            i += 4;
        }
        while i < n {
            dst[i] &= src[i];
            i += 1;
        }
    }

    #[inline]
    pub(super) fn difference_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let blocks = n / 4 * 4;
        let mut i = 0;
        while i < blocks {
            dst[i] &= !src[i];
            dst[i + 1] &= !src[i + 1];
            dst[i + 2] &= !src[i + 2];
            dst[i + 3] &= !src[i + 3];
            i += 4;
        }
        while i < n {
            dst[i] &= !src[i];
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! 256-bit kernels. Every function requires AVX2 (callers gate on
    //! [`super::avx2_active`]); loads are unaligned because cube offsets
    //! are stride-aligned, not 32-byte-aligned, at stride 2. Each kernel
    //! processes 4-word blocks, then a 2-word SSE block (the whole cube at
    //! the hot stride-2 rung), then at most one scalar tail word.

    use core::arch::x86_64::{
        _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_or_si256,
        _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_storeu_si256, _mm256_testz_si256,
        _mm256_xor_si256, _mm_and_si128, _mm_andnot_si128, _mm_loadu_si128, _mm_storeu_si128,
        _mm_testz_si128, _mm_xor_si128,
    };

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn covers(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut i = 0usize;
        let mut acc = _mm256_setzero_si256();
        while i + 4 <= n {
            let va = _mm256_loadu_si256(ap.add(i).cast());
            let vb = _mm256_loadu_si256(bp.add(i).cast());
            acc = _mm256_or_si256(acc, _mm256_andnot_si256(va, vb));
            i += 4;
        }
        let mut ok = _mm256_testz_si256(acc, acc) == 1;
        if i + 2 <= n {
            let va = _mm_loadu_si128(ap.add(i).cast());
            let vb = _mm_loadu_si128(bp.add(i).cast());
            let r = _mm_andnot_si128(va, vb);
            ok &= _mm_testz_si128(r, r) == 1;
            i += 2;
        }
        if i < n {
            ok &= *bp.add(i) & !*ap.add(i) == 0;
        }
        ok
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn slices_eq(a: &[u64], b: &[u64]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut i = 0usize;
        let mut acc = _mm256_setzero_si256();
        while i + 4 <= n {
            let va = _mm256_loadu_si256(ap.add(i).cast());
            let vb = _mm256_loadu_si256(bp.add(i).cast());
            acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
            i += 4;
        }
        let mut ok = _mm256_testz_si256(acc, acc) == 1;
        if i + 2 <= n {
            let va = _mm_loadu_si128(ap.add(i).cast());
            let vb = _mm_loadu_si128(bp.add(i).cast());
            let r = _mm_xor_si128(va, vb);
            ok &= _mm_testz_si128(r, r) == 1;
            i += 2;
        }
        if i < n {
            ok &= *ap.add(i) == *bp.add(i);
        }
        ok
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn is_zero(c: &[u64]) -> bool {
        fold_or(c) == 0
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_or(c: &[u64]) -> u64 {
        let n = c.len();
        let p = c.as_ptr();
        let mut i = 0usize;
        let mut acc = _mm256_setzero_si256();
        while i + 4 <= n {
            acc = _mm256_or_si256(acc, _mm256_loadu_si256(p.add(i).cast()));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut out = (lanes[0] | lanes[1]) | (lanes[2] | lanes[3]);
        while i < n {
            out |= *p.add(i);
            i += 1;
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn or_acc(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0usize;
        while i + 4 <= n {
            let vd = _mm256_loadu_si256(dp.add(i).cast_const().cast());
            let vs = _mm256_loadu_si256(sp.add(i).cast());
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_or_si256(vd, vs));
            i += 4;
        }
        while i < n {
            *dp.add(i) |= *sp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn and_into(out: &mut [u64], a: &[u64], b: &[u64]) {
        let n = out.len();
        let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(ap.add(i).cast());
            let vb = _mm256_loadu_si256(bp.add(i).cast());
            _mm256_storeu_si256(op.add(i).cast(), _mm256_and_si256(va, vb));
            i += 4;
        }
        if i + 2 <= n {
            let va = _mm_loadu_si128(ap.add(i).cast());
            let vb = _mm_loadu_si128(bp.add(i).cast());
            _mm_storeu_si128(op.add(i).cast(), _mm_and_si128(va, vb));
            i += 2;
        }
        while i < n {
            *op.add(i) = *ap.add(i) & *bp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cofactor_into(out: &mut [u64], x: &[u64], p: &[u64], full: &[u64]) {
        let n = out.len();
        let (op, xp, pp, fp) = (out.as_mut_ptr(), x.as_ptr(), p.as_ptr(), full.as_ptr());
        let ones = _mm256_set1_epi64x(-1);
        let mut i = 0usize;
        while i + 4 <= n {
            let vx = _mm256_loadu_si256(xp.add(i).cast());
            let vp = _mm256_loadu_si256(pp.add(i).cast());
            let vf = _mm256_loadu_si256(fp.add(i).cast());
            let not_p = _mm256_xor_si256(vp, ones);
            _mm256_storeu_si256(
                op.add(i).cast(),
                _mm256_and_si256(_mm256_or_si256(vx, not_p), vf),
            );
            i += 4;
        }
        while i < n {
            *op.add(i) = (*xp.add(i) | !*pp.add(i)) & *fp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn disjoint(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut i = 0usize;
        let mut acc = _mm256_setzero_si256();
        while i + 4 <= n {
            let va = _mm256_loadu_si256(ap.add(i).cast());
            let vb = _mm256_loadu_si256(bp.add(i).cast());
            acc = _mm256_or_si256(acc, _mm256_and_si256(va, vb));
            i += 4;
        }
        let mut ok = _mm256_testz_si256(acc, acc) == 1;
        if i + 2 <= n {
            let va = _mm_loadu_si128(ap.add(i).cast());
            let vb = _mm_loadu_si128(bp.add(i).cast());
            let r = _mm_and_si128(va, vb);
            ok &= _mm_testz_si128(r, r) == 1;
            i += 2;
        }
        if i < n {
            ok &= *ap.add(i) & *bp.add(i) == 0;
        }
        ok
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn intersect_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0usize;
        while i + 4 <= n {
            let vd = _mm256_loadu_si256(dp.add(i).cast_const().cast());
            let vs = _mm256_loadu_si256(sp.add(i).cast());
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_and_si256(vd, vs));
            i += 4;
        }
        while i < n {
            *dp.add(i) &= *sp.add(i);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn difference_into(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let mut i = 0usize;
        while i + 4 <= n {
            let vd = _mm256_loadu_si256(dp.add(i).cast_const().cast());
            let vs = _mm256_loadu_si256(sp.add(i).cast());
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_andnot_si256(vs, vd));
            i += 4;
        }
        while i < n {
            *dp.add(i) &= !*sp.add(i);
            i += 1;
        }
    }

    /// The expand legality sweep under AVX2 codegen: one `target_feature`
    /// boundary for the whole off-set instead of one per cube, so the
    /// `#[inline(always)]` sweep bodies vectorize inside it and `a` stays
    /// in registers across the list.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sweep_meets_all_invalid(
        fd: &crate::flat::FlatDomain,
        list: &[u64],
        w: usize,
        a: &[u64],
    ) -> bool {
        super::wide_sweep_meets_all_invalid(fd, list, w, a)
    }
}

// ---------------------------------------------------------------------------
// Dispatched slice helpers (WordSet word-loops, refine mask checks)
// ---------------------------------------------------------------------------

/// Whether the Wide kernels should serve dispatched slice helpers on this
/// thread right now.
#[inline]
fn wide_selected() -> bool {
    selected_backend() == KernelBackend::Wide
}

/// `dst |= src` per word (shorter operand bounds the sweep), dispatched on
/// the selected backend.
pub fn union_into(dst: &mut [u64], src: &[u64]) {
    #[cfg(feature = "simd")]
    if wide_selected() {
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            // SAFETY: gated on runtime AVX2 detection.
            unsafe { avx2::or_acc(dst, src) };
            return;
        }
        portable::union_into(dst, src);
        return;
    }
    for (a, b) in dst.iter_mut().zip(src) {
        *a |= b;
    }
}

/// `dst &= src` per word, dispatched on the selected backend.
pub fn intersect_into(dst: &mut [u64], src: &[u64]) {
    #[cfg(feature = "simd")]
    if wide_selected() {
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            // SAFETY: gated on runtime AVX2 detection.
            unsafe { avx2::intersect_into(dst, src) };
            return;
        }
        portable::intersect_into(dst, src);
        return;
    }
    for (a, b) in dst.iter_mut().zip(src) {
        *a &= b;
    }
}

/// `dst &= !src` per word, dispatched on the selected backend.
pub fn difference_into(dst: &mut [u64], src: &[u64]) {
    #[cfg(feature = "simd")]
    if wide_selected() {
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            // SAFETY: gated on runtime AVX2 detection.
            unsafe { avx2::difference_into(dst, src) };
            return;
        }
        portable::difference_into(dst, src);
        return;
    }
    for (a, b) in dst.iter_mut().zip(src) {
        *a &= !b;
    }
}

/// Whether `a & b == 0` everywhere (the shorter operand bounds the sweep),
/// dispatched on the selected backend.
pub fn disjoint(a: &[u64], b: &[u64]) -> bool {
    #[cfg(feature = "simd")]
    if wide_selected() {
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            // SAFETY: gated on runtime AVX2 detection.
            return unsafe { avx2::disjoint(a, b) };
        }
        return portable::disjoint(a, b);
    }
    a.iter().zip(b).all(|(&x, &y)| x & y == 0)
}

// ---------------------------------------------------------------------------
// Masked-greedy cube-mask kernels (picola-core::refine)
// ---------------------------------------------------------------------------

/// ORs into `mask` its own copy shifted by `k` bit positions (`k` a power
/// of two below the mask width) — frees one cube dimension of a code-space
/// mask. `down` selects the shift direction: downward when the cube's codes
/// carry a 1 at the freed bit, upward when they carry a 0.
pub fn expand_mask(mask: &mut [u64], k: usize, down: bool) {
    if down {
        if k >= 64 {
            let wk = k / 64;
            for i in 0..mask.len() - wk {
                mask[i] |= mask[i + wk];
            }
        } else {
            for i in 0..mask.len() {
                let hi = if i + 1 < mask.len() { mask[i + 1] << (64 - k) } else { 0 };
                mask[i] |= (mask[i] >> k) | hi;
            }
        }
    } else if k >= 64 {
        let wk = k / 64;
        for i in (wk..mask.len()).rev() {
            mask[i] |= mask[i - wk];
        }
    } else {
        for i in (0..mask.len()).rev() {
            let lo = if i > 0 { mask[i - 1] >> (64 - k) } else { 0 };
            mask[i] |= (mask[i] << k) | lo;
        }
    }
}

/// The cube-mask state machine behind the refine loop's word-parallel
/// greedy: a current cube mask over the `2^nv` code space, a trial mask
/// grown bit by bit, a disjointness check against the forbidden-code words,
/// and a commit. One implementor per mask width class, so the single-word
/// and two-word specializations live in registers while the general form
/// works on slices — all three produce identical merge decisions.
pub trait MaskKernel {
    /// Resets both masks to the single code `seed`.
    fn seed(&mut self, seed: u32);
    /// Starts a trial from the current mask.
    fn begin(&mut self);
    /// Frees bit `b` of the trial cube; `down` when the cube's codes carry
    /// a 1 at `b` (the mirrored half lies below), else upward.
    fn grow(&mut self, b: u32, down: bool);
    /// Whether the trial mask avoids every forbidden code word.
    fn disjoint(&mut self, forbidden: &[u64]) -> bool;
    /// Accepts the trial as the new current mask.
    fn commit(&mut self);
}

/// Single-word code space (`nv ≤ 6`): both masks are one `u64` register.
#[derive(Debug, Default)]
pub struct Mask1 {
    cur: u64,
    trial: u64,
}

impl Mask1 {
    /// A fresh kernel (masks start empty; [`MaskKernel::seed`] initializes).
    pub fn new() -> Mask1 {
        Mask1::default()
    }
}

impl MaskKernel for Mask1 {
    #[inline]
    fn seed(&mut self, seed: u32) {
        self.cur = 1u64 << seed;
        self.trial = self.cur;
    }

    #[inline]
    fn begin(&mut self) {
        self.trial = self.cur;
    }

    #[inline]
    fn grow(&mut self, b: u32, down: bool) {
        if down {
            self.trial |= self.trial >> (1u64 << b);
        } else {
            self.trial |= self.trial << (1u64 << b);
        }
    }

    #[inline]
    fn disjoint(&mut self, forbidden: &[u64]) -> bool {
        self.trial & forbidden.first().copied().unwrap_or(0) == 0
    }

    #[inline]
    fn commit(&mut self) {
        self.cur = self.trial;
    }
}

/// Two-word code space (`nv == 7`): the masks are register pairs.
/// Shift-down folds high-word bits into the low word, shift-up the reverse;
/// each uses the *pre-expansion* partner word, exactly like the slice form.
#[derive(Debug, Default)]
pub struct Mask2 {
    cur: (u64, u64),
    trial: (u64, u64),
}

impl Mask2 {
    /// A fresh kernel (masks start empty; [`MaskKernel::seed`] initializes).
    pub fn new() -> Mask2 {
        Mask2::default()
    }
}

impl MaskKernel for Mask2 {
    #[inline]
    fn seed(&mut self, seed: u32) {
        self.cur = if seed < 64 {
            (1u64 << seed, 0u64)
        } else {
            (0u64, 1u64 << (seed - 64))
        };
        self.trial = self.cur;
    }

    #[inline]
    fn begin(&mut self) {
        self.trial = self.cur;
    }

    #[inline]
    fn grow(&mut self, b: u32, down: bool) {
        let (mut tlo, mut thi) = self.trial;
        let k = 1usize << b;
        if down {
            if k >= 64 {
                tlo |= thi;
            } else {
                tlo |= (tlo >> k) | (thi << (64 - k));
                thi |= thi >> k;
            }
        } else if k >= 64 {
            thi |= tlo;
        } else {
            thi |= (thi << k) | (tlo >> (64 - k));
            tlo |= tlo << k;
        }
        self.trial = (tlo, thi);
    }

    #[inline]
    fn disjoint(&mut self, forbidden: &[u64]) -> bool {
        let f0 = forbidden.first().copied().unwrap_or(0);
        let f1 = forbidden.get(1).copied().unwrap_or(0);
        self.trial.0 & f0 == 0 && self.trial.1 & f1 == 0
    }

    #[inline]
    fn commit(&mut self) {
        self.cur = self.trial;
    }
}

/// General multi-word code space (`nv ≥ 8`): the masks live in caller-owned
/// scratch slices and the disjointness check runs through the dispatched
/// wide kernels. The backend is resolved once at construction, not per
/// candidate.
#[derive(Debug)]
pub struct MaskN<'a> {
    cur: &'a mut Vec<u64>,
    trial: &'a mut Vec<u64>,
    words: usize,
    wide: bool,
}

impl<'a> MaskN<'a> {
    /// Wraps the two scratch buffers for a `words`-word code space.
    pub fn new(cur: &'a mut Vec<u64>, trial: &'a mut Vec<u64>, words: usize) -> MaskN<'a> {
        let wide = wide_selected() && cfg!(feature = "simd");
        MaskN {
            cur,
            trial,
            words,
            wide,
        }
    }
}

impl MaskKernel for MaskN<'_> {
    #[inline]
    fn seed(&mut self, seed: u32) {
        self.cur.clear();
        self.cur.resize(self.words, 0);
        self.cur[seed as usize / 64] |= 1u64 << (seed % 64);
    }

    #[inline]
    fn begin(&mut self) {
        self.trial.clear();
        self.trial.extend_from_slice(self.cur);
    }

    #[inline]
    fn grow(&mut self, b: u32, down: bool) {
        expand_mask(self.trial, 1usize << b, down);
    }

    #[inline]
    fn disjoint(&mut self, forbidden: &[u64]) -> bool {
        #[cfg(feature = "simd")]
        if self.wide {
            #[cfg(target_arch = "x86_64")]
            if avx2_active() {
                // SAFETY: gated on runtime AVX2 detection.
                return unsafe { avx2::disjoint(self.trial, forbidden) };
            }
            return portable::disjoint(self.trial, forbidden);
        }
        let _ = self.wide;
        self.trial.iter().zip(forbidden).all(|(&m, &f)| m & f == 0)
    }

    #[inline]
    fn commit(&mut self) {
        std::mem::swap(self.cur, self.trial);
    }
}

// ---------------------------------------------------------------------------
// 64-byte-aligned word buffers
// ---------------------------------------------------------------------------

/// One cache line of words — the allocation unit of [`AlignedWords`].
#[derive(Debug, Clone, Copy, Default)]
#[repr(C, align(64))]
struct CacheLine([u64; 8]);

const LINE_WORDS: usize = 8;

/// A growable `u64` buffer whose backing allocation is always 64-byte
/// aligned (it is a `Vec` of `#[repr(align(64))]` cache lines under the
/// hood). This is the alignment contract of the flat engine's backing
/// stores: a cube at word offset 0 starts a cache line, so 1/2/4-word wide
/// loads from the buffer head never straddle one. Dereferences to `[u64]`,
/// so slice operations (indexing, `chunks_exact`, `copy_within`, sorting)
/// work unchanged; the `Vec`-like growth API below covers the rest.
#[derive(Clone, Default)]
pub struct AlignedWords {
    lines: Vec<CacheLine>,
    len: usize,
}

impl AlignedWords {
    /// An empty buffer (no allocation yet).
    pub fn new() -> AlignedWords {
        AlignedWords::default()
    }

    /// Current capacity in words.
    fn cap_words(&self) -> usize {
        self.lines.len() * LINE_WORDS
    }

    /// Ensures room for `additional` more words past `len`, zero-filling
    /// any newly allocated lines (growth is amortized via `Vec::resize`).
    fn grow_for(&mut self, additional: usize) {
        let need = self.len + additional;
        if need > self.cap_words() {
            self.lines.resize(need.div_ceil(LINE_WORDS), CacheLine::default());
        }
    }

    /// The initialized words as a slice.
    pub fn as_slice(&self) -> &[u64] {
        // SAFETY: `lines` owns `cap_words() >= len` initialized `u64`s
        // (`CacheLine` is `repr(C)` over `[u64; 8]`), and the 64-byte line
        // alignment more than satisfies `u64`'s.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<u64>(), self.len) }
    }

    /// The initialized words as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        // SAFETY: as in `as_slice`, with unique access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<u64>(), self.len) }
    }

    /// Appends one word.
    pub fn push(&mut self, x: u64) {
        self.grow_for(1);
        let i = self.len;
        self.len += 1;
        self.as_mut_slice()[i] = x;
    }

    /// Appends a word slice.
    pub fn extend_from_slice(&mut self, src: &[u64]) {
        self.grow_for(src.len());
        let start = self.len;
        self.len += src.len();
        self.as_mut_slice()[start..].copy_from_slice(src);
    }

    /// Resizes to `new_len` words, filling any new tail with `value`.
    pub fn resize(&mut self, new_len: usize, value: u64) {
        if new_len > self.len {
            self.grow_for(new_len - self.len);
            let start = self.len;
            self.len = new_len;
            self.as_mut_slice()[start..].fill(value);
        } else {
            self.len = new_len;
        }
    }

    /// Shortens to `len` words (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
        }
    }

    /// Empties the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Keeps only the words for which `f` returns `true`, preserving order.
    pub fn retain(&mut self, mut f: impl FnMut(&u64) -> bool) {
        let mut write = 0usize;
        for i in 0..self.len {
            let x = self.as_slice()[i];
            if f(&x) {
                self.as_mut_slice()[write] = x;
                write += 1;
            }
        }
        self.len = write;
    }
}

impl Deref for AlignedWords {
    type Target = [u64];

    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedWords {
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AlignedWords {
    fn eq(&self, other: &AlignedWords) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AlignedWords {}

impl std::fmt::Debug for AlignedWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<&[u64]> for AlignedWords {
    fn from(src: &[u64]) -> AlignedWords {
        let mut w = AlignedWords::new();
        w.extend_from_slice(src);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift word stream for kernel cross-checks.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn words(&mut self, n: usize) -> Vec<u64> {
            (0..n).map(|_| self.next()).collect()
        }
    }

    #[test]
    fn aligned_words_is_64_byte_aligned_and_vec_like() {
        let mut w = AlignedWords::new();
        assert!(w.is_empty());
        for i in 0..100u64 {
            w.push(i);
        }
        assert_eq!(w.len(), 100);
        assert_eq!(w.as_ptr() as usize % 64, 0);
        w.extend_from_slice(&[7, 8, 9]);
        assert_eq!(w[100..], [7, 8, 9]);
        w.truncate(10);
        assert_eq!(w.len(), 10);
        // a resize past a previous high-water mark zero-fills stale words
        w.resize(120, 0);
        assert!(w[10..].iter().all(|&x| x == 0));
        w.retain(|&x| x % 2 == 0);
        assert_eq!(&w[..5], &[0, 2, 4, 6, 8]);
        w.clear();
        assert!(w.is_empty());
        let c: AlignedWords = (&[1u64, 2, 3][..]).into();
        assert_eq!(c.as_slice(), &[1, 2, 3]);
        assert_eq!(c.clone(), c);
    }

    #[test]
    fn backend_override_wins_and_restores() {
        let prev = set_backend_override(Some(KernelBackend::Scalar));
        assert_eq!(selected_backend(), KernelBackend::Scalar);
        set_backend_override(prev);
    }

    #[cfg(feature = "simd")]
    #[test]
    fn wide_is_the_feature_default() {
        // Without an env/override request the feature default is Wide (an
        // env request, if present, is itself honored — both are "not
        // Scalar-by-accident").
        let prev = set_backend_override(Some(KernelBackend::Wide));
        assert_eq!(selected_backend(), KernelBackend::Wide);
        set_backend_override(prev);
    }

    /// Every backend's leaf kernels agree with the scalar reference on
    /// random slices across the 1/2/4/8-word strides plus odd lengths.
    #[cfg(feature = "simd")]
    #[test]
    fn wide_kernels_match_scalar_bit_for_bit() {
        fn check<K: Kern>(k: K) {
            let s = ScalarKern;
            let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
            for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 33] {
                for case in 0..50 {
                    let a = rng.words(n);
                    let mut b = rng.words(n);
                    if case % 3 == 0 {
                        // force containment-ish and equality-ish cases
                        for (x, y) in b.iter_mut().zip(&a) {
                            *x &= y;
                        }
                    }
                    if case % 7 == 0 {
                        b.copy_from_slice(&a);
                    }
                    assert_eq!(k.covers(&a, &b), s.covers(&a, &b));
                    assert_eq!(k.slices_eq(&a, &b), s.slices_eq(&a, &b));
                    assert_eq!(k.is_zero(&a), s.is_zero(&a));
                    assert_eq!(k.fold_or(&a), s.fold_or(&a));
                    let p = rng.words(n);
                    let full = rng.words(n);
                    let mut out_k = vec![0u64; n];
                    let mut out_s = vec![0u64; n];
                    k.and_into(&mut out_k, &a, &b);
                    s.and_into(&mut out_s, &a, &b);
                    assert_eq!(out_k, out_s);
                    k.cofactor_into(&mut out_k, &a, &p, &full);
                    s.cofactor_into(&mut out_s, &a, &p, &full);
                    assert_eq!(out_k, out_s);
                    let mut acc_k = rng.words(n);
                    let mut acc_s = acc_k.clone();
                    k.or_acc(&mut acc_k, &b);
                    s.or_acc(&mut acc_s, &b);
                    assert_eq!(acc_k, acc_s);
                }
            }
        }
        check(PortableKern);
        #[cfg(target_arch = "x86_64")]
        if avx2_active() {
            check(Avx2Kern);
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn wide_meet_kernels_match_scalar_on_mv_domains() {
        use crate::domain::DomainBuilder;

        let dom = DomainBuilder::new()
            .multi("s", 70)
            .binary("a")
            .multi("t", 60)
            .build();
        let fd = FlatDomain::new(&dom);
        let w = fd.words();
        let mut rng = Rng(42);
        fn check<K: Kern>(k: K, fd: &FlatDomain, a: &[u64], b: &[u64]) {
            let s = ScalarKern;
            assert_eq!(k.meet_valid(fd, a, b), s.meet_valid(fd, a, b));
            assert_eq!(k.distance(fd, a, b), s.distance(fd, a, b));
        }
        for _ in 0..200 {
            let mut a = rng.words(w);
            let mut b = rng.words(w);
            for (x, f) in a.iter_mut().zip(fd.full()) {
                *x &= f;
            }
            for (x, f) in b.iter_mut().zip(fd.full()) {
                *x &= f;
            }
            check(PortableKern, &fd, &a, &b);
            #[cfg(target_arch = "x86_64")]
            if avx2_active() {
                check(Avx2Kern, &fd, &a, &b);
            }
        }
    }

    #[test]
    fn dispatched_slice_helpers_match_plain_loops() {
        let mut rng = Rng(7);
        for backend in [KernelBackend::Scalar, KernelBackend::Wide] {
            let prev = set_backend_override(Some(backend));
            for n in [1usize, 2, 4, 5, 8, 13] {
                let a = rng.words(n);
                let b = rng.words(n);
                let mut u = a.clone();
                union_into(&mut u, &b);
                let mut i = a.clone();
                intersect_into(&mut i, &b);
                let mut d = a.clone();
                difference_into(&mut d, &b);
                for k in 0..n {
                    assert_eq!(u[k], a[k] | b[k]);
                    assert_eq!(i[k], a[k] & b[k]);
                    assert_eq!(d[k], a[k] & !b[k]);
                }
                assert_eq!(
                    disjoint(&a, &b),
                    a.iter().zip(&b).all(|(&x, &y)| x & y == 0)
                );
                assert!(disjoint(&a, &vec![0u64; n]));
            }
            set_backend_override(prev);
        }
    }

    /// All three mask kernels walk the same merge decisions; cross-check
    /// the register forms against the slice form on a shared script.
    #[test]
    fn mask_kernels_agree_on_a_merge_script() {
        let forbidden4: Vec<u64> = vec![0x8000_0000_0000_0001, 0, 0xff, 1 << 63];
        let run = |kernel: &mut dyn MaskKernel, forbidden: &[u64], nv: u32| {
            let mut decisions = Vec::new();
            for seed in [0u32, 3, (1 << nv) - 1] {
                kernel.seed(seed % (1 << nv.min(8)));
                for step in 0..nv {
                    kernel.begin();
                    kernel.grow(step, seed >> step & 1 == 1);
                    let ok = kernel.disjoint(forbidden);
                    decisions.push(ok);
                    if ok {
                        kernel.commit();
                    }
                }
            }
            decisions
        };
        // nv = 8 → 4 words: the slice kernel under both backends agrees
        let mut cur = Vec::new();
        let mut trial = Vec::new();
        let prev = set_backend_override(Some(KernelBackend::Scalar));
        let scalar = run(&mut MaskN::new(&mut cur, &mut trial, 4), &forbidden4, 8);
        set_backend_override(Some(KernelBackend::Wide));
        let mut cur2 = Vec::new();
        let mut trial2 = Vec::new();
        let wide = run(&mut MaskN::new(&mut cur2, &mut trial2, 4), &forbidden4, 8);
        set_backend_override(prev);
        assert_eq!(scalar, wide);
        // nv = 6 → Mask1 vs a 1-word MaskN
        let forbidden1 = vec![0x55u64];
        let m1 = run(&mut Mask1::new(), &forbidden1, 6);
        let mut cur3 = Vec::new();
        let mut trial3 = Vec::new();
        let mn1 = run(&mut MaskN::new(&mut cur3, &mut trial3, 1), &forbidden1, 6);
        assert_eq!(m1, mn1);
        // nv = 7 → Mask2 vs a 2-word MaskN
        let forbidden2 = vec![0x55u64, 0xaa00_0000_0000_0000];
        let m2 = run(&mut Mask2::new(), &forbidden2, 7);
        let mut cur4 = Vec::new();
        let mut trial4 = Vec::new();
        let mn2 = run(&mut MaskN::new(&mut cur4, &mut trial4, 2), &forbidden2, 7);
        assert_eq!(m2, mn2);
    }

    #[test]
    fn expand_mask_matches_explicit_enumeration() {
        // Freeing bit b of a seed mask must produce the union of the codes
        // with bit b in both polarities.
        for nv in [6usize, 7, 8] {
            let words = (1usize << nv).div_ceil(64);
            for seed in [0usize, 1, 5, (1 << nv) - 1] {
                for b in 0..nv {
                    let mut mask = vec![0u64; words];
                    mask[seed / 64] |= 1u64 << (seed % 64);
                    expand_mask(&mut mask, 1usize << b, seed >> b & 1 == 1);
                    let mut expect = vec![0u64; words];
                    for code in [seed & !(1 << b), seed | (1 << b)] {
                        expect[code / 64] |= 1u64 << (code % 64);
                    }
                    assert_eq!(mask, expect, "nv={nv} seed={seed} b={b}");
                }
            }
        }
    }
}
