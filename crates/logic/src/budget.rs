//! Execution budgets: wall-clock deadlines and work-unit caps with
//! graceful degradation.
//!
//! Every potentially exponential search in the workspace (the ESPRESSO
//! loop, the exact minimizer, the PICOLA column/refinement phases, the
//! baseline encoders) accepts a [`Budget`] and polls it through
//! [`Budget::tick`] at its natural unit of work — a loop iteration, a
//! branch-and-bound node, a candidate move. When the budget runs out the
//! algorithm stops early and returns its **best-so-far** result tagged
//! [`Completion::Degraded`] instead of hanging or panicking.
//!
//! Deadline checks are *counter-gated*: `Instant::now()` is read only once
//! every [`CLOCK_PERIOD`] work units, so ticking costs an increment and a
//! compare on the hot path.
//!
//! Budgets also host the fault-injection hook: every tick names its
//! trigger point, and an armed [`crate::chaos`] plan can force exhaustion
//! at that point deterministically (see the chaos module docs).

use crate::chaos;
use std::cell::Cell;
use std::time::{Duration, Instant};

/// How often (in work units) the deadline is checked against the clock.
pub const CLOCK_PERIOD: u64 = 1024;

/// Why a budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit cap was reached.
    WorkLimit,
    /// A [`crate::chaos`] plan forced exhaustion at a trigger point.
    Injected,
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustReason::Deadline => write!(f, "wall-clock deadline"),
            ExhaustReason::WorkLimit => write!(f, "work limit"),
            ExhaustReason::Injected => write!(f, "injected fault"),
        }
    }
}

/// Whether a bounded computation ran to completion or degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// The algorithm finished normally; the result is what an unbounded
    /// run would have produced.
    #[default]
    Complete,
    /// The budget ran out; the result is valid but best-effort.
    Degraded {
        /// What ran out.
        reason: ExhaustReason,
        /// Work units spent before exhaustion.
        work_done: u64,
    },
}

impl Completion {
    /// `true` when the run finished without degradation.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Folds two phase completions: degraded wins (earliest reason kept).
    pub fn and(self, other: Completion) -> Completion {
        match self {
            Completion::Complete => other,
            degraded => degraded,
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::Degraded { reason, work_done } => {
                write!(f, "degraded ({reason} after {work_done} work units)")
            }
        }
    }
}

/// A shared execution budget: an optional wall-clock deadline plus an
/// optional cap on abstract work units.
///
/// A `Budget` is passed by shared reference and uses interior mutability,
/// so one budget can be threaded through a whole pipeline (extraction →
/// encoding → minimization) and enforce a single global limit. Exhaustion
/// latches: once a tick fails, every later tick fails too.
///
/// ```
/// use picola_logic::budget::Budget;
///
/// let budget = Budget::unlimited().work_limit(10);
/// for _ in 0..10 {
///     assert!(budget.tick("example.step", 1));
/// }
/// assert!(!budget.tick("example.step", 1));
/// assert!(budget.is_exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    work: Cell<u64>,
    next_clock_check: Cell<u64>,
    exhausted: Cell<Option<ExhaustReason>>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits (ticks always succeed unless chaos fires).
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            work_limit: None,
            work: Cell::new(0),
            next_clock_check: Cell::new(CLOCK_PERIOD),
            exhausted: Cell::new(None),
        }
    }

    /// A budget expiring `duration` from now.
    pub fn with_deadline(duration: Duration) -> Self {
        Budget::unlimited().deadline_in(duration)
    }

    /// A budget allowing `limit` work units.
    pub fn with_work_limit(limit: u64) -> Self {
        Budget::unlimited().work_limit(limit)
    }

    /// Sets the wall-clock deadline to `duration` from now.
    #[must_use]
    pub fn deadline_in(mut self, duration: Duration) -> Self {
        self.deadline = Instant::now().checked_add(duration);
        self
    }

    /// Sets the work-unit cap.
    #[must_use]
    pub fn work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(limit);
        self
    }

    /// Work units consumed so far.
    pub fn work_done(&self) -> u64 {
        self.work.get()
    }

    /// `true` once any tick has failed (or [`Budget::exhaust`] was called).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.get().is_some()
    }

    /// The reason the budget ran out, if it has.
    pub fn exhaustion(&self) -> Option<ExhaustReason> {
        self.exhausted.get()
    }

    /// The [`Completion`] describing this budget's current state.
    pub fn completion(&self) -> Completion {
        match self.exhausted.get() {
            None => Completion::Complete,
            Some(reason) => Completion::Degraded {
                reason,
                work_done: self.work.get(),
            },
        }
    }

    /// Marks the budget exhausted for `reason` (latches).
    pub fn exhaust(&self, reason: ExhaustReason) {
        if self.exhausted.get().is_none() {
            self.exhausted.set(Some(reason));
        }
    }

    /// Records `amount` work units at the named trigger point and reports
    /// whether the computation may continue.
    ///
    /// Returns `false` — permanently — once the deadline has passed, the
    /// work cap is hit, or an armed chaos plan fires at `point`. Callers
    /// are expected to stop refining and return their best-so-far result
    /// tagged with [`Budget::completion`].
    #[must_use]
    pub fn tick(&self, point: &'static str, amount: u64) -> bool {
        if self.exhausted.get().is_some() {
            return false;
        }
        if chaos::should_fire(point) {
            self.exhausted.set(Some(ExhaustReason::Injected));
            return false;
        }
        let work = self.work.get().saturating_add(amount);
        self.work.set(work);
        if let Some(limit) = self.work_limit {
            if work > limit {
                self.exhausted.set(Some(ExhaustReason::WorkLimit));
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            if work >= self.next_clock_check.get() {
                self.next_clock_check.set(work + CLOCK_PERIOD);
                if Instant::now() >= deadline {
                    self.exhausted.set(Some(ExhaustReason::Deadline));
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick("test.step", 1));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.completion(), Completion::Complete);
        assert_eq!(b.work_done(), 10_000);
    }

    #[test]
    fn work_limit_latches() {
        let b = Budget::with_work_limit(5);
        assert!(b.tick("test.step", 5));
        assert!(!b.tick("test.step", 1));
        assert!(!b.tick("test.step", 1), "exhaustion must latch");
        assert_eq!(b.exhaustion(), Some(ExhaustReason::WorkLimit));
        match b.completion() {
            Completion::Degraded { reason, .. } => {
                assert_eq!(reason, ExhaustReason::WorkLimit);
            }
            Completion::Complete => panic!("expected degraded"),
        }
    }

    #[test]
    fn zero_deadline_exhausts_at_first_clock_check() {
        let b = Budget::with_deadline(Duration::ZERO);
        let mut stopped = false;
        for _ in 0..(2 * CLOCK_PERIOD) {
            if !b.tick("test.step", 1) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "deadline of zero must stop within one clock period");
        assert_eq!(b.exhaustion(), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn large_amounts_saturate() {
        let b = Budget::with_work_limit(u64::MAX - 1);
        assert!(b.tick("test.step", u64::MAX - 1));
        assert!(!b.tick("test.step", u64::MAX), "saturating add hits the cap");
        assert_eq!(b.exhaustion(), Some(ExhaustReason::WorkLimit));
    }

    #[test]
    fn completion_and_prefers_degradation() {
        let complete = Completion::Complete;
        let degraded = Completion::Degraded {
            reason: ExhaustReason::WorkLimit,
            work_done: 7,
        };
        assert_eq!(complete.and(degraded), degraded);
        assert_eq!(degraded.and(complete), degraded);
        assert_eq!(complete.and(complete), complete);
        assert!(complete.is_complete());
        assert!(!degraded.is_complete());
    }

    #[test]
    fn manual_exhaust_keeps_first_reason() {
        let b = Budget::unlimited();
        b.exhaust(ExhaustReason::Deadline);
        b.exhaust(ExhaustReason::WorkLimit);
        assert_eq!(b.exhaustion(), Some(ExhaustReason::Deadline));
    }
}
