//! Execution budgets: wall-clock deadlines and work-unit caps with
//! graceful degradation.
//!
//! Every potentially exponential search in the workspace (the ESPRESSO
//! loop, the exact minimizer, the PICOLA column/refinement phases, the
//! baseline encoders) accepts a [`Budget`] and polls it through
//! [`Budget::tick`] at its natural unit of work — a loop iteration, a
//! branch-and-bound node, a candidate move. When the budget runs out the
//! algorithm stops early and returns its **best-so-far** result tagged
//! [`Completion::Degraded`] instead of hanging or panicking.
//!
//! Deadline checks are *counter-gated*: `Instant::now()` is read only once
//! every [`CLOCK_PERIOD`] work units, so ticking costs an increment and a
//! compare on the hot path.
//!
//! Budgets are thread-safe: the work counter is an atomic behind an `Arc`,
//! so a parallel portfolio can draw every worker's ticks from one shared
//! pool. [`Budget::worker`] derives a worker view that shares the pool but
//! keeps a private exhaustion latch, so an injected fault inside one worker
//! degrades that worker alone while a real deadline or work cap stops all
//! of them.
//!
//! Budgets also host the fault-injection hook: every tick names its
//! trigger point, and an armed [`crate::chaos`] plan can force exhaustion
//! at that point deterministically (see the chaos module docs).

use crate::chaos;
use crate::obs;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in work units) the deadline is checked against the clock.
pub const CLOCK_PERIOD: u64 = 1024;

/// Why a budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-unit cap was reached.
    WorkLimit,
    /// A [`crate::chaos`] plan forced exhaustion at a trigger point.
    Injected,
}

/// Latch encoding: 0 = not exhausted, otherwise `ExhaustReason` + 1.
const LATCH_CLEAR: u8 = 0;

impl ExhaustReason {
    fn to_latch(self) -> u8 {
        match self {
            ExhaustReason::Deadline => 1,
            ExhaustReason::WorkLimit => 2,
            ExhaustReason::Injected => 3,
        }
    }

    fn from_latch(code: u8) -> Option<ExhaustReason> {
        match code {
            1 => Some(ExhaustReason::Deadline),
            2 => Some(ExhaustReason::WorkLimit),
            3 => Some(ExhaustReason::Injected),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustReason::Deadline => write!(f, "wall-clock deadline"),
            ExhaustReason::WorkLimit => write!(f, "work limit"),
            ExhaustReason::Injected => write!(f, "injected fault"),
        }
    }
}

/// Whether a bounded computation ran to completion or degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// The algorithm finished normally; the result is what an unbounded
    /// run would have produced.
    #[default]
    Complete,
    /// The budget ran out; the result is valid but best-effort.
    Degraded {
        /// What ran out.
        reason: ExhaustReason,
        /// Work units spent before exhaustion.
        work_done: u64,
    },
}

impl Completion {
    /// `true` when the run finished without degradation.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Folds two phase completions: degraded wins (earliest reason kept).
    pub fn and(self, other: Completion) -> Completion {
        match self {
            Completion::Complete => other,
            degraded => degraded,
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::Degraded { reason, work_done } => {
                write!(f, "degraded ({reason} after {work_done} work units)")
            }
        }
    }
}

/// A shared execution budget: an optional wall-clock deadline plus an
/// optional cap on abstract work units.
///
/// A `Budget` is passed by shared reference and uses atomic interior
/// mutability, so one budget can be threaded through a whole pipeline
/// (extraction → encoding → minimization) — across threads — and enforce
/// a single global limit. Exhaustion latches: once a tick fails, every
/// later tick on the same latch fails too.
///
/// `Clone` produces an **independent snapshot** (its own work counter);
/// [`Budget::worker`] produces a **pool-sharing worker view** for parallel
/// portfolio members.
///
/// ```
/// use picola_logic::budget::Budget;
///
/// let budget = Budget::unlimited().work_limit(10);
/// for _ in 0..10 {
///     assert!(budget.tick("example.step", 1));
/// }
/// assert!(!budget.tick("example.step", 1));
/// assert!(budget.is_exhausted());
/// ```
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    work_limit: Option<u64>,
    /// Shared across `worker()` views; snapshotted by `clone()`.
    work: Arc<AtomicU64>,
    next_clock_check: AtomicU64,
    /// 0 = live; otherwise the latched `ExhaustReason` (+1). Private per
    /// view, so worker faults stay local.
    exhausted: AtomicU8,
    /// Where ticks report their work when no thread-local recorder is
    /// installed (see [`crate::obs`]); disabled by default.
    recorder: obs::Recorder,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Clone for Budget {
    /// An independent snapshot: same limits, current work count, but its
    /// own counter and latch — ticks on the clone do not drain the
    /// original's pool. Use [`Budget::worker`] to share the pool.
    fn clone(&self) -> Self {
        Budget {
            deadline: self.deadline,
            work_limit: self.work_limit,
            work: Arc::new(AtomicU64::new(self.work.load(Ordering::Relaxed))),
            next_clock_check: AtomicU64::new(self.next_clock_check.load(Ordering::Relaxed)),
            exhausted: AtomicU8::new(self.exhausted.load(Ordering::Relaxed)),
            recorder: self.recorder.clone(),
        }
    }
}

impl Budget {
    /// A budget with no limits (ticks always succeed unless chaos fires).
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            work_limit: None,
            work: Arc::new(AtomicU64::new(0)),
            next_clock_check: AtomicU64::new(CLOCK_PERIOD),
            exhausted: AtomicU8::new(LATCH_CLEAR),
            recorder: obs::Recorder::disabled(),
        }
    }

    /// A budget expiring `duration` from now.
    pub fn with_deadline(duration: Duration) -> Self {
        Budget::unlimited().deadline_in(duration)
    }

    /// A budget allowing `limit` work units.
    pub fn with_work_limit(limit: u64) -> Self {
        Budget::unlimited().work_limit(limit)
    }

    /// Sets the wall-clock deadline to `duration` from now.
    #[must_use]
    pub fn deadline_in(mut self, duration: Duration) -> Self {
        self.deadline = Instant::now().checked_add(duration);
        self
    }

    /// Sets the work-unit cap.
    #[must_use]
    pub fn work_limit(mut self, limit: u64) -> Self {
        self.work_limit = Some(limit);
        self
    }

    /// Attaches an [`obs`] recorder: every tick reports its work units to
    /// the thread's current recorder if one is installed, else to this
    /// one. Shared by [`Budget::worker`] views and `clone()` snapshots, so
    /// one trace observes the whole pool.
    #[must_use]
    pub fn with_recorder(mut self, recorder: obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached recorder (disabled unless [`Budget::with_recorder`]
    /// was used).
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// A worker view for one member of a parallel portfolio: shares this
    /// budget's work pool (every worker's ticks drain the same counter, so
    /// the cap stays global), but owns a private exhaustion latch. A real
    /// limit — deadline or work cap — trips every worker's latch as each
    /// next polls the shared state; an **injected** chaos fault latches only
    /// the worker that hit it.
    pub fn worker(&self) -> Budget {
        Budget {
            deadline: self.deadline,
            work_limit: self.work_limit,
            work: Arc::clone(&self.work),
            next_clock_check: AtomicU64::new(self.next_clock_check.load(Ordering::Relaxed)),
            exhausted: AtomicU8::new(self.exhausted.load(Ordering::Relaxed)),
            recorder: self.recorder.clone(),
        }
    }

    /// Work units consumed so far (across all pool-sharing workers).
    pub fn work_done(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// `true` once any tick has failed (or [`Budget::exhaust`] was called).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed) != LATCH_CLEAR
    }

    /// The reason the budget ran out, if it has.
    pub fn exhaustion(&self) -> Option<ExhaustReason> {
        ExhaustReason::from_latch(self.exhausted.load(Ordering::Relaxed))
    }

    /// The [`Completion`] describing this budget's current state.
    pub fn completion(&self) -> Completion {
        match self.exhaustion() {
            None => Completion::Complete,
            Some(reason) => Completion::Degraded {
                reason,
                work_done: self.work_done(),
            },
        }
    }

    /// Marks the budget exhausted for `reason` (latches; first reason wins).
    pub fn exhaust(&self, reason: ExhaustReason) {
        let _ = self.exhausted.compare_exchange(
            LATCH_CLEAR,
            reason.to_latch(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Records `amount` work units at the named trigger point and reports
    /// whether the computation may continue.
    ///
    /// Returns `false` — permanently — once the deadline has passed, the
    /// work cap is hit, or an armed chaos plan fires at `point`. Callers
    /// are expected to stop refining and return their best-so-far result
    /// tagged with [`Budget::completion`].
    #[must_use]
    pub fn tick(&self, point: &'static str, amount: u64) -> bool {
        if self.is_exhausted() {
            return false;
        }
        if chaos::should_fire(point) {
            obs::count_scoped(&self.recorder, obs::Counter::FaultsInjected, 1);
            self.exhaust(ExhaustReason::Injected);
            return false;
        }
        let prev = self
            .work
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |w| {
                Some(w.saturating_add(amount))
            })
            // The closure always returns Some, so Err is unreachable; the
            // fallback keeps the saturating contract without panicking.
            .unwrap_or(u64::MAX);
        let work = prev.saturating_add(amount);
        // Exactly one span receives each pool addition (recorded before the
        // limit checks so even the failing tick is accounted), which keeps
        // trace work totals equal to the drained pool by construction.
        obs::record_work_scoped(&self.recorder, point, amount);
        if let Some(limit) = self.work_limit {
            if work > limit {
                self.exhaust(ExhaustReason::WorkLimit);
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            let next = self.next_clock_check.load(Ordering::Relaxed);
            if work >= next {
                // One view reads the clock per period; racing views simply
                // retry at the next period boundary.
                let claimed = self
                    .next_clock_check
                    .compare_exchange(
                        next,
                        work.saturating_add(CLOCK_PERIOD),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok();
                if claimed && Instant::now() >= deadline {
                    self.exhaust(ExhaustReason::Deadline);
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.tick("test.step", 1));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.completion(), Completion::Complete);
        assert_eq!(b.work_done(), 10_000);
    }

    #[test]
    fn work_limit_latches() {
        let b = Budget::with_work_limit(5);
        assert!(b.tick("test.step", 5));
        assert!(!b.tick("test.step", 1));
        assert!(!b.tick("test.step", 1), "exhaustion must latch");
        assert_eq!(b.exhaustion(), Some(ExhaustReason::WorkLimit));
        match b.completion() {
            Completion::Degraded { reason, .. } => {
                assert_eq!(reason, ExhaustReason::WorkLimit);
            }
            Completion::Complete => panic!("expected degraded"),
        }
    }

    #[test]
    fn zero_deadline_exhausts_at_first_clock_check() {
        let b = Budget::with_deadline(Duration::ZERO);
        let mut stopped = false;
        for _ in 0..(2 * CLOCK_PERIOD) {
            if !b.tick("test.step", 1) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "deadline of zero must stop within one clock period");
        assert_eq!(b.exhaustion(), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn large_amounts_saturate() {
        let b = Budget::with_work_limit(u64::MAX - 1);
        assert!(b.tick("test.step", u64::MAX - 1));
        assert!(!b.tick("test.step", u64::MAX), "saturating add hits the cap");
        assert_eq!(b.exhaustion(), Some(ExhaustReason::WorkLimit));
    }

    #[test]
    fn completion_and_prefers_degradation() {
        let complete = Completion::Complete;
        let degraded = Completion::Degraded {
            reason: ExhaustReason::WorkLimit,
            work_done: 7,
        };
        assert_eq!(complete.and(degraded), degraded);
        assert_eq!(degraded.and(complete), degraded);
        assert_eq!(complete.and(complete), complete);
        assert!(complete.is_complete());
        assert!(!degraded.is_complete());
    }

    #[test]
    fn manual_exhaust_keeps_first_reason() {
        let b = Budget::unlimited();
        b.exhaust(ExhaustReason::Deadline);
        b.exhaust(ExhaustReason::WorkLimit);
        assert_eq!(b.exhaustion(), Some(ExhaustReason::Deadline));
    }

    #[test]
    fn workers_drain_one_pool() {
        let parent = Budget::with_work_limit(10);
        let w1 = parent.worker();
        let w2 = parent.worker();
        assert!(w1.tick("test.step", 6));
        assert!(!w2.tick("test.step", 6), "pool is shared, 12 > 10");
        assert_eq!(w2.exhaustion(), Some(ExhaustReason::WorkLimit));
        // The parent's own latch trips as soon as it next polls the pool.
        assert!(!parent.tick("test.step", 1));
        assert_eq!(parent.exhaustion(), Some(ExhaustReason::WorkLimit));
        assert_eq!(parent.work_done(), w1.work_done());
    }

    #[test]
    fn worker_injected_fault_is_private() {
        let parent = Budget::unlimited();
        let worker = parent.worker();
        {
            let _guard = crate::chaos::arm("espresso.iter", 0);
            assert!(!worker.tick("espresso.iter", 1));
        }
        assert_eq!(worker.exhaustion(), Some(ExhaustReason::Injected));
        assert!(!worker.tick("espresso.iter", 1), "worker latch holds");
        assert!(!parent.is_exhausted(), "parent latch is untouched");
        assert!(parent.tick("espresso.iter", 1));
    }

    #[test]
    fn clone_is_an_independent_snapshot() {
        let original = Budget::with_work_limit(10);
        assert!(original.tick("test.step", 4));
        let snap = original.clone();
        assert!(snap.tick("test.step", 6));
        assert!(!snap.tick("test.step", 1), "snapshot carries prior work");
        assert!(!original.is_exhausted(), "original unaffected by clone");
        assert_eq!(original.work_done(), 4);
        assert!(original.tick("test.step", 6));
    }

    #[test]
    fn shared_budget_is_thread_safe() {
        let parent = Budget::with_work_limit(100_000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let worker = parent.worker();
                s.spawn(move || {
                    while worker.tick("test.step", 1) {}
                });
            }
        });
        // Latches are per-view: the parent trips on its own next poll.
        assert!(!parent.tick("test.step", 1));
        assert_eq!(parent.exhaustion(), Some(ExhaustReason::WorkLimit));
        // Every worker stops within one tick of the cap; the pool may
        // overshoot by at most one in-flight amount per worker (plus the
        // parent's failing poll above).
        assert!(parent.work_done() >= 100_000);
        assert!(parent.work_done() <= 100_005);
    }
}
