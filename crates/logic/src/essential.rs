//! Detection of essential primes.
//!
//! A prime `c` of an irredundant prime cover is *essential* when it covers a
//! minterm no other prime implicant of the function covers. ESPRESSO's test
//! avoids enumerating all primes: `c` is essential iff `c` is **not** covered
//! by `H ∪ DC`, where `H` collects, for every other cube `g` of the cover,
//! `g` itself (distance 0) or the consensus `cons(g, c)` (distance 1).

use crate::cover::Cover;
use crate::cube::Cube;
use crate::equiv::cover_covers_cube;

fn essential_test_cover(f: &Cover, dc: &Cover, skip: usize) -> Cover {
    let dom = f.domain();
    let c = &f.cubes()[skip];
    let mut h: Vec<Cube> = Vec::new();
    for (j, g) in f.iter().enumerate() {
        if j == skip {
            continue;
        }
        match g.distance(c, dom) {
            0 => h.push(g.clone()),
            1 => {
                if let Some(k) = g.consensus(c, dom) {
                    h.push(k);
                }
            }
            _ => {}
        }
    }
    for g in dc.iter() {
        match g.distance(c, dom) {
            0 => h.push(g.clone()),
            1 => {
                if let Some(k) = g.consensus(c, dom) {
                    h.push(k);
                }
            }
            _ => {}
        }
    }
    Cover::from_cubes(dom, h)
}

/// Whether cube `f.cubes()[i]` is an essential prime of the function covered
/// by `f` with don't-care set `dc`.
pub fn is_essential(f: &Cover, dc: &Cover, i: usize) -> bool {
    let h = essential_test_cover(f, dc, i);
    !cover_covers_cube(&h, &f.cubes()[i])
}

/// Extracts the essential primes of `f` (assumed prime and irredundant
/// relative to `dc`).
pub fn essentials(f: &Cover, dc: &Cover) -> Cover {
    let dom = f.domain();
    assert_eq!(dom, dc.domain(), "essentials: domain mismatch");
    let picked = (0..f.len())
        .filter(|&i| is_essential(f, dc, i))
        .map(|i| f.cubes()[i].clone());
    Cover::from_cubes(dom, picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::expand::expand;
    use crate::irredundant::irredundant;
    use crate::primes::all_primes;
    use crate::urp::complement;

    /// Ground truth: `c` is essential iff some minterm of the on-set is
    /// covered by `c` and by no other prime of the full prime set.
    fn brute_essentials(on: &Cover, dc: &Cover) -> Vec<String> {
        let dom = on.domain();
        let primes = all_primes(on, dc);
        let mut out = Vec::new();
        for (i, p) in primes.iter().enumerate() {
            let others = Cover::from_cubes(
                dom,
                primes
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, c)| c.clone()),
            );
            let mut essential = false;
            for pt in Cover::enumerate_points(dom) {
                let single = Cover::from_cubes(dom, [p.clone()]);
                if on.covers_point(&pt) && single.covers_point(&pt) && !others.covers_point(&pt) {
                    essential = true;
                    break;
                }
            }
            if essential {
                out.push(p.render(dom));
            }
        }
        out.sort();
        out
    }

    fn check(on_text: &str, dc_text: &str, nvars: usize) {
        let dom = Domain::binary(nvars);
        let on = Cover::parse(&dom, on_text);
        let dc = if dc_text.is_empty() {
            Cover::empty(&dom)
        } else {
            Cover::parse(&dom, dc_text)
        };
        // Build a prime irredundant cover first (essentials assumes one).
        let off = complement(&on.union(&dc));
        let f = irredundant(&expand(&on, &off), &dc);
        let ess = essentials(&f, &dc);
        let mut got: Vec<String> = ess.iter().map(|c| c.render(&dom)).collect();
        got.sort();
        assert_eq!(got, brute_essentials(&on, &dc), "on={on_text} dc={dc_text}");
    }

    #[test]
    fn essentials_match_brute_force() {
        check("11- 0-1", "", 3);
        check("1-- -1- --1", "", 3);
        check("10 01", "", 2);
        check("110 011", "", 3);
        check("11- -11 1-1", "", 3); // cyclic-ish structure
    }

    #[test]
    fn essentials_with_dont_cares() {
        check("11", "10", 2);
        check("110 001", "111", 3);
    }

    #[test]
    fn all_cubes_essential_in_disjoint_cover() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "11- 00-");
        let e = essentials(&f, &Cover::empty(&dom));
        assert_eq!(e.len(), 2);
    }
}
