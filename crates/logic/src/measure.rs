//! Counting minterms of covers without enumeration.
//!
//! The count is computed over a disjoint decomposition (iterated sharp), so
//! it is exact and polynomial in the cover size rather than exponential in
//! the variable count.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::Domain;
use crate::sharp::cube_sharp;

/// Number of minterms in one cube: the product of its per-variable part
/// counts. Saturates at `u128::MAX`.
pub fn cube_minterms(dom: &Domain, c: &Cube) -> u128 {
    (0..dom.num_vars())
        .map(|v| c.var_part_count(dom, v) as u128)
        .try_fold(1u128, u128::checked_mul)
        .unwrap_or(u128::MAX)
}

/// Number of minterms covered by `f`, counted exactly via a disjoint
/// decomposition.
pub fn cover_minterms(f: &Cover) -> u128 {
    let dom = f.domain();
    // Make the cubes disjoint by sharping each against its predecessors.
    let mut disjoint: Vec<Cube> = Vec::new();
    for c in f.iter() {
        let mut pieces = vec![c.clone()];
        for d in &disjoint {
            let mut next = Vec::new();
            for p in &pieces {
                next.extend(cube_sharp(dom, p, d));
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        disjoint.extend(pieces);
    }
    disjoint.iter().map(|c| cube_minterms(dom, c)).sum()
}

/// The fraction of the whole space `f` covers, in `[0, 1]`.
pub fn cover_density(f: &Cover) -> f64 {
    let dom = f.domain();
    let total: u128 = (0..dom.num_vars())
        .map(|v| dom.var(v).parts() as u128)
        .product();
    if total == 0 {
        return 0.0;
    }
    cover_minterms(f) as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainBuilder;

    #[test]
    fn single_cube_counts() {
        let dom = Domain::binary(4);
        let f = Cover::parse(&dom, "1---");
        assert_eq!(cover_minterms(&f), 8);
        let g = Cover::parse(&dom, "10-1");
        assert_eq!(cover_minterms(&g), 2);
    }

    #[test]
    fn overlapping_cubes_are_not_double_counted() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "1-- -1-");
        // |1--| + |-1-| - |11-| = 4 + 4 - 2 = 6
        assert_eq!(cover_minterms(&f), 6);
    }

    #[test]
    fn counts_match_enumeration() {
        let dom = Domain::binary(4);
        for text in ["1--- --11 0-0-", "1010 0101", "---- 11--"] {
            let f = Cover::parse(&dom, text);
            let brute = Cover::enumerate_points(&dom)
                .iter()
                .filter(|pt| f.covers_point(pt))
                .count() as u128;
            assert_eq!(cover_minterms(&f), brute, "{text}");
        }
    }

    #[test]
    fn multivalued_counting() {
        let dom = DomainBuilder::new().multi("s", 5).binary("x").build();
        let mut c = Cube::full(&dom);
        c.clear_part(0);
        c.clear_part(1); // s in {2,3,4}
        c.restrict_binary(&dom, 1, true);
        let f = Cover::from_cubes(&dom, [c]);
        assert_eq!(cover_minterms(&f), 3);
        assert!((cover_density(&f) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn tautology_has_full_density() {
        let dom = Domain::binary(3);
        assert_eq!(cover_minterms(&Cover::universe(&dom)), 8);
        assert!((cover_density(&Cover::universe(&dom)) - 1.0).abs() < 1e-12);
        assert_eq!(cover_minterms(&Cover::empty(&dom)), 0);
    }
}
