//! The sharp (#) operation: set difference of cubes and covers.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::Domain;
use crate::obs;

/// Computes `a # b`: a cover of exactly the minterms of `a` not in `b`,
/// using the disjoint sharp expansion (the result cubes are pairwise
/// disjoint).
///
/// Per non-full variable of `b` (in order), one result cube fixes that
/// variable to the part set `a ∖ b` while earlier variables stay restricted
/// to the intersection — the classic recursive decomposition.
pub fn cube_sharp(dom: &Domain, a: &Cube, b: &Cube) -> Vec<Cube> {
    obs::count(obs::Counter::CubeSharps, 1);
    if !a.intersects(b, dom) {
        return vec![a.clone()];
    }
    if b.covers(a) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut prefix = a.clone();
    for v in 0..dom.num_vars() {
        let var = dom.var(v);
        // parts of a in v that b does not admit
        let mut extra = Vec::new();
        for p in var.part_range() {
            if a.has_part(p) && !b.has_part(p) {
                extra.push(p);
            }
        }
        if !extra.is_empty() {
            let mut c = prefix.clone();
            for p in var.part_range() {
                c.clear_part(p);
            }
            for &p in &extra {
                c.set_part(p);
            }
            if c.is_valid(dom) {
                out.push(c);
            }
        }
        // restrict prefix to a ∩ b in v before moving on
        for p in var.part_range() {
            if !b.has_part(p) {
                prefix.clear_part(p);
            }
        }
    }
    out
}

/// Computes `f # g` for covers: the minterms of `f` not covered by `g`.
///
/// The result is reduced by single-cube containment but not fully
/// minimized; feed it to [`crate::espresso()`] if a small cover matters.
pub fn cover_sharp(f: &Cover, g: &Cover) -> Cover {
    let dom = f.domain();
    assert_eq!(dom, g.domain(), "sharp: domain mismatch");
    let mut current: Vec<Cube> = f.cubes().to_vec();
    for b in g.iter() {
        let mut next = Vec::new();
        for a in &current {
            next.extend(cube_sharp(dom, a, b));
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    let mut out = Cover::from_cubes(dom, current);
    out.scc();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainBuilder;
    use crate::urp::tautology;

    #[test]
    fn sharp_of_disjoint_cubes_is_identity() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "1-");
        let g = Cover::parse(&dom, "0-");
        let s = cover_sharp(&f, &g);
        assert_eq!(s.cubes(), f.cubes());
    }

    #[test]
    fn sharp_of_covered_cube_is_empty() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "11");
        let g = Cover::parse(&dom, "1-");
        assert!(cover_sharp(&f, &g).is_empty());
    }

    #[test]
    fn sharp_partitions_exactly() {
        let dom = Domain::binary(4);
        let f = Cover::parse(&dom, "1--- -1-- --11");
        let g = Cover::parse(&dom, "11-- --1-");
        let s = cover_sharp(&f, &g);
        for pt in Cover::enumerate_points(&dom) {
            let want = f.covers_point(&pt) && !g.covers_point(&pt);
            assert_eq!(s.covers_point(&pt), want, "point {pt:?}");
        }
    }

    #[test]
    fn universe_sharp_f_is_complement(){
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "1-- -10");
        let s = cover_sharp(&Cover::universe(&dom), &f);
        assert!(tautology(&s.union(&f)));
        for pt in Cover::enumerate_points(&dom) {
            assert_ne!(s.covers_point(&pt), f.covers_point(&pt));
        }
    }

    #[test]
    fn sharp_on_multivalued_vars() {
        let dom = DomainBuilder::new().multi("s", 5).binary("x").build();
        let mut a = Cube::full(&dom);
        a.clear_part(4); // s in {0..3}
        let mut b = Cube::full(&dom);
        b.restrict(&dom, 0, 1);
        let pieces = cube_sharp(&dom, &a, &b);
        let cover = Cover::from_cubes(&dom, pieces);
        for pt in Cover::enumerate_points(&dom) {
            let fa = Cover::from_cubes(&dom, [a.clone()]).covers_point(&pt);
            let fb = Cover::from_cubes(&dom, [b.clone()]).covers_point(&pt);
            assert_eq!(cover.covers_point(&pt), fa && !fb, "{pt:?}");
        }
    }

    #[test]
    fn disjoint_sharp_pieces_do_not_overlap() {
        let dom = Domain::binary(3);
        let a = Cover::parse(&dom, "---").cubes()[0].clone();
        let b = Cover::parse(&dom, "101").cubes()[0].clone();
        let pieces = cube_sharp(&dom, &a, &b);
        for i in 0..pieces.len() {
            for j in (i + 1)..pieces.len() {
                assert!(!pieces[i].intersects(&pieces[j], &dom), "{i} {j}");
            }
        }
    }
}
