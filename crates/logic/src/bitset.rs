//! `u64`-word bitset kernel shared by the hot paths.
//!
//! The PICOLA refine loop, the baseline encoders, and the cover
//! containment checks all reduce to dense set operations over small
//! universes (symbols, code words, constraint indices). Representing
//! those sets as packed `u64` words turns per-element loops into
//! word-parallel AND/OR/ANDNOT sweeps — 64 membership tests per
//! instruction instead of one `Vec<bool>` load each.
//!
//! [`WordSet`] is deliberately minimal: fixed universe decided at
//! construction, no growth, no iterator adapters beyond what the hot
//! paths need. Higher-level types (`SymbolSet`, `Cube`) keep their own
//! packed words and interoperate through raw `&[u64]` slices.
//!
//! The bulk word sweeps (union, intersection, difference, disjointness)
//! route through the dispatched kernels in [`crate::simd`], so they pick
//! up the AVX2 backend on capable hosts while staying bit-identical to
//! the plain loops everywhere else.

/// A fixed-universe set of `usize` indices packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WordSet {
    /// Number of valid bit positions (`0..len`).
    len: usize,
    words: Vec<u64>,
}

impl Default for WordSet {
    /// The empty set over the empty universe — a placeholder that scratch
    /// holders lazily replace with a correctly sized set.
    fn default() -> Self {
        WordSet::new(0)
    }
}

impl WordSet {
    /// The empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        WordSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a set from its member indices. Out-of-range members are
    /// ignored (the universe is fixed at `len`).
    pub fn from_members<I: IntoIterator<Item = usize>>(len: usize, members: I) -> Self {
        let mut s = WordSet::new(len);
        for m in members {
            s.insert(m);
        }
        s
    }

    /// Size of the universe (not the cardinality).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Adds `i` to the set; out-of-range indices are ignored.
    pub fn insert(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Removes `i` from the set.
    pub fn remove(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test; out-of-range indices are never members.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no index is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every member, keeping the universe and the allocation — the
    /// reset primitive of the reusable refine scratch buffers.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Makes `self` a copy of `other`'s members without reallocating
    /// (universes must match in word count; the shorter operand bounds the
    /// sweep).
    pub fn copy_from(&mut self, other: &WordSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a = *b;
        }
    }

    /// In-place union with `other` (universes must match in word count;
    /// the shorter operand bounds the sweep).
    pub fn union_with(&mut self, other: &WordSet) {
        crate::simd::union_into(&mut self.words, &other.words);
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &WordSet) {
        crate::simd::intersect_into(&mut self.words, &other.words);
    }

    /// In-place difference: removes every member of `other`.
    pub fn difference_with(&mut self, other: &WordSet) {
        crate::simd::difference_into(&mut self.words, &other.words);
    }

    /// `true` when the sets share at least one member — the word-parallel
    /// replacement for nested membership loops.
    pub fn intersects(&self, other: &WordSet) -> bool {
        !crate::simd::disjoint(&self.words, &other.words)
    }

    /// The packed words, little-endian in bit position.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates members in increasing order using per-word
    /// count-trailing-zeros extraction.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(
                (w != 0).then_some(w),
                |&rest| {
                    let next = rest & (rest - 1);
                    (next != 0).then_some(next)
                },
            )
            .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = WordSet::new(130);
        for i in [0, 63, 64, 127, 128, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 6);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn out_of_range_is_ignored() {
        let mut s = WordSet::new(10);
        s.insert(10);
        s.insert(1000);
        assert!(s.is_empty());
        assert!(!s.contains(10));
        assert!(!s.contains(usize::MAX));
    }

    #[test]
    fn iter_ones_matches_membership() {
        let members = [1usize, 2, 3, 62, 63, 64, 65, 100, 128];
        let s = WordSet::from_members(129, members.iter().copied());
        let listed: Vec<usize> = s.iter_ones().collect();
        assert_eq!(listed, members);
    }

    #[test]
    fn set_algebra() {
        let a = WordSet::from_members(200, [1, 65, 130]);
        let b = WordSet::from_members(200, [2, 65, 131]);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 2, 65, 130, 131]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![65]);
        let disjoint = WordSet::from_members(200, [3, 64]);
        assert!(!a.intersects(&disjoint));
    }

    #[test]
    fn clear_and_copy_from_reuse_the_allocation() {
        let mut s = WordSet::from_members(130, [0, 64, 129]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 130);
        let src = WordSet::from_members(130, [3, 65, 128]);
        s.copy_from(&src);
        assert_eq!(s, src);
        // copying a sparser set overwrites every word, not just set ones
        let sparse = WordSet::from_members(130, [65]);
        s.copy_from(&sparse);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![65]);
    }

    #[test]
    fn difference_removes_the_other_set() {
        let mut s = WordSet::from_members(130, [0, 64, 65, 129]);
        let other = WordSet::from_members(130, [64, 129, 7]);
        s.difference_with(&other);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 65]);
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = WordSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter_ones().count(), 0);
        assert!(s.words().is_empty());
    }
}
