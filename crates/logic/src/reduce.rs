//! REDUCE: shrink each cube to the smallest cube still covering the part of
//! the function no other cube covers, enabling EXPAND to escape local optima.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::urp::complement;

/// Reduces every cube of `f` in sequence (largest first): cube `c` is
/// replaced by `c ∩ supercube(¬((F ∖ c ∪ dc) cofactored by c))`, the smallest
/// cube covering the minterms of `c` that nothing else covers.
///
/// If a cube reduces to nothing (it was fully redundant) it is dropped.
/// The result still implements the same incompletely-specified function.
pub fn reduce(f: &Cover, dc: &Cover) -> Cover {
    let dom = f.domain();
    assert_eq!(dom, dc.domain(), "reduce: domain mismatch");
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| std::cmp::Reverse(c.part_count()));

    for i in 0..cubes.len() {
        let c = cubes[i].clone();
        let rest = Cover::from_cubes(
            dom,
            cubes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, x)| x.clone())
                .chain(dc.iter().cloned()),
        );
        let g = rest.cofactor(&c);
        let h = complement(&g);
        match h.supercube() {
            None => {
                // c is entirely covered by the rest; mark for removal by
                // making it empty.
                cubes[i] = Cube::empty(dom);
            }
            Some(sc) => {
                let reduced = c.and(&sc);
                if reduced.is_valid(dom) {
                    cubes[i] = reduced;
                } else {
                    cubes[i] = Cube::empty(dom);
                }
            }
        }
    }

    Cover::from_cubes(dom, cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::equiv::implements;

    #[test]
    fn reduce_preserves_function() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "11- 1-1 0-0");
        let dc = Cover::empty(&dom);
        let r = reduce(&on, &dc);
        assert!(implements(&r, &on, &dc));
    }

    #[test]
    fn reduce_shrinks_overlapping_cubes() {
        let dom = Domain::binary(2);
        // Two overlapping cubes covering everything: 1- and -- ; the second
        // should shrink (or the redundant part vanish).
        let on = Cover::parse(&dom, "1- --");
        let r = reduce(&on, &Cover::empty(&dom));
        assert!(implements(&r, &on, &Cover::empty(&dom)));
        let total: usize = r.part_count();
        assert!(total < on.part_count());
    }

    #[test]
    fn fully_redundant_cube_is_dropped() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "-- 11");
        let r = reduce(&on, &Cover::empty(&dom));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reduce_respects_dont_cares() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "1-");
        let dc = Cover::parse(&dom, "01");
        let r = reduce(&on, &dc);
        // on-set minterms are 10 and 11; both must stay covered by r ∪ dc
        assert!(implements(&r, &on, &dc));
    }
}
