//! Reading and writing PLAs in the Berkeley ESPRESSO format.
//!
//! Supported directives: `.i`, `.o`, `.p`, `.ilb`, `.ob`, `.type` (`f`,
//! `fd`, `fr`), `.e`/`.end`, comments (`#`). Multi-valued `.mv` PLAs are not
//! read from text; multi-valued covers are built programmatically (see
//! [`crate::DomainBuilder`]).

use crate::chaos;
use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::{Domain, DomainBuilder};
use crate::error::{ParseLimits, ParsePlaError};
use std::fmt::Write as _;

/// Logical PLA type, mirroring ESPRESSO's `.type` directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaType {
    /// Only the on-set is given.
    F,
    /// On-set and don't-care set (`-` outputs) are given — the default.
    #[default]
    Fd,
    /// On-set and off-set (`0` outputs) are given.
    Fr,
}

/// An in-memory PLA: a domain of binary inputs plus one output variable, and
/// the covers read from (or to be written to) the file.
#[derive(Debug, Clone)]
pub struct Pla {
    /// Domain: `.i` binary variables followed by one output variable with
    /// `.o` parts.
    pub domain: Domain,
    /// On-set cover.
    pub on: Cover,
    /// Don't-care cover (empty unless the type supplies one).
    pub dc: Cover,
    /// Off-set cover (empty unless the type is `fr`).
    pub off: Cover,
    /// Declared type.
    pub ty: PlaType,
    /// Input labels (`.ilb`), if present.
    pub input_labels: Vec<String>,
    /// Output labels (`.ob`), if present.
    pub output_labels: Vec<String>,
}

impl Pla {
    /// Builds the PLA domain for `ni` binary inputs and `no` outputs.
    pub fn make_domain(ni: usize, no: usize) -> Domain {
        DomainBuilder::new()
            .binaries("x", ni)
            .output("z", no.max(1))
            .build()
    }

    /// Creates an empty PLA with the given dimensions.
    pub fn new(ni: usize, no: usize) -> Self {
        let domain = Self::make_domain(ni, no);
        Pla {
            on: Cover::empty(&domain),
            dc: Cover::empty(&domain),
            off: Cover::empty(&domain),
            domain,
            ty: PlaType::Fd,
            input_labels: Vec::new(),
            output_labels: Vec::new(),
        }
    }

    /// Number of binary inputs.
    pub fn num_inputs(&self) -> usize {
        self.domain.num_vars() - 1
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.domain.var(self.domain.require_output_var()).parts()
    }
}

/// Parses a PLA from text with default [`ParseLimits`].
///
/// # Errors
///
/// Returns [`ParsePlaError`] when directives are missing or malformed, or a
/// cube line has the wrong width or an unknown character.
pub fn parse_pla(text: &str) -> Result<Pla, ParsePlaError> {
    parse_pla_with(text, &ParseLimits::default())
}

/// Parses a PLA from text, enforcing explicit input `limits` so untrusted
/// files fail fast with a line-numbered diagnostic instead of exhausting
/// memory.
///
/// # Errors
///
/// Returns [`ParsePlaError`] when directives are missing or malformed, a
/// cube line has the wrong width or an unknown character, or any of the
/// `limits` is exceeded.
pub fn parse_pla_with(text: &str, limits: &ParseLimits) -> Result<Pla, ParsePlaError> {
    if let Some(msg) = chaos::fail_point("pla.parse") {
        return Err(ParsePlaError::new(0, &msg));
    }
    if text
        .lines()
        .all(|l| l.split('#').next().unwrap_or("").trim().is_empty())
    {
        // A zero-length frame is what a dropped socket delivers; name it
        // instead of the misleading "missing .i directive".
        return Err(ParsePlaError::new(0, "empty input: zero-length or whitespace-only PLA"));
    }
    let mut ni: Option<usize> = None;
    let mut no: Option<usize> = None;
    let mut ty = PlaType::Fd;
    let mut input_labels = Vec::new();
    let mut output_labels = Vec::new();
    let mut cube_lines: Vec<(usize, String)> = Vec::new();
    let mut terminated = false;

    for (lineno, raw) in text.lines().enumerate() {
        let err = |msg: &str| ParsePlaError::new(lineno + 1, msg);
        if raw.len() > limits.max_line_len {
            return Err(err(&format!(
                "line length {} exceeds the limit of {} bytes",
                raw.len(),
                limits.max_line_len
            )));
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let key = it.next().unwrap_or("");
            match key {
                "i" => {
                    let n: usize = it
                        .next()
                        .ok_or_else(|| err(".i needs a count"))?
                        .parse()
                        .map_err(|_| err(".i count is not a number"))?;
                    if n > limits.max_inputs {
                        return Err(err(&format!(
                            ".i {n} exceeds the limit of {} inputs",
                            limits.max_inputs
                        )));
                    }
                    ni = Some(n);
                }
                "o" => {
                    let n: usize = it
                        .next()
                        .ok_or_else(|| err(".o needs a count"))?
                        .parse()
                        .map_err(|_| err(".o count is not a number"))?;
                    if n > limits.max_outputs {
                        return Err(err(&format!(
                            ".o {n} exceeds the limit of {} outputs",
                            limits.max_outputs
                        )));
                    }
                    no = Some(n);
                }
                "p" => { /* product-term count: informational */ }
                "ilb" => input_labels = it.map(str::to_owned).collect(),
                "ob" => output_labels = it.map(str::to_owned).collect(),
                "type" => {
                    ty = match it.next() {
                        Some("f") => PlaType::F,
                        Some("fd") => PlaType::Fd,
                        Some("fr") => PlaType::Fr,
                        other => {
                            return Err(err(&format!(
                                "unsupported .type {:?}",
                                other.unwrap_or("")
                            )))
                        }
                    }
                }
                "e" | "end" => {
                    terminated = true;
                    break;
                }
                _ => return Err(err(&format!("unknown directive .{key}"))),
            }
        } else {
            if cube_lines.len() >= limits.max_terms {
                return Err(err(&format!(
                    "more than {} product terms",
                    limits.max_terms
                )));
            }
            cube_lines.push((lineno + 1, line.to_owned()));
        }
    }

    if !terminated && !text.ends_with('\n') {
        // No `.e` terminator and the final line is cut short: the frame
        // was truncated in transit (dropped socket, partial read).
        return Err(ParsePlaError::new(
            text.lines().count(),
            "truncated input: final line is unterminated and no .e terminator was seen",
        ));
    }
    let ni = ni.ok_or_else(|| ParsePlaError::new(0, "missing .i directive"))?;
    let no = no.ok_or_else(|| ParsePlaError::new(0, "missing .o directive"))?;
    let total_parts = 2 * ni + no.max(1);
    if total_parts > limits.max_parts {
        return Err(ParsePlaError::new(
            0,
            &format!(
                "domain needs {total_parts} positional parts, exceeding the limit of {}",
                limits.max_parts
            ),
        ));
    }
    let mut pla = Pla::new(ni, no);
    pla.ty = ty;
    pla.input_labels = input_labels;
    pla.output_labels = output_labels;
    let dom = pla.domain.clone();
    let ov = dom.require_output_var();
    let out_off = dom.var(ov).offset();

    for (lineno, line) in cube_lines {
        let compact: String = line.split_whitespace().collect();
        let err = |msg: &str| ParsePlaError::new(lineno, msg);
        if compact.len() != ni + no {
            return Err(err(&format!(
                "cube has {} characters, expected {}",
                compact.len(),
                ni + no
            )));
        }
        let mut base = Cube::full(&dom);
        for (v, ch) in compact.chars().take(ni).enumerate() {
            match ch {
                '0' => base.restrict_binary(&dom, v, false),
                '1' => base.restrict_binary(&dom, v, true),
                '-' | '2' => {}
                _ => return Err(err(&format!("bad input character {ch:?}"))),
            }
        }
        let mut on_parts = Vec::new();
        let mut dc_parts = Vec::new();
        let mut off_parts = Vec::new();
        for (o, ch) in compact.chars().skip(ni).enumerate() {
            match ch {
                '1' | '4' => on_parts.push(o),
                '0' => off_parts.push(o),
                '-' | '2' | '~' => dc_parts.push(o),
                _ => return Err(err(&format!("bad output character {ch:?}"))),
            }
        }
        let with_outputs = |parts: &[usize]| -> Option<Cube> {
            if parts.is_empty() {
                return None;
            }
            let mut c = base.clone();
            for p in dom.var(ov).part_range() {
                c.clear_part(p);
            }
            for &o in parts {
                c.set_part(out_off + o);
            }
            Some(c)
        };
        if let Some(c) = with_outputs(&on_parts) {
            pla.on.push(c);
        }
        match ty {
            PlaType::F => {}
            PlaType::Fd => {
                if let Some(c) = with_outputs(&dc_parts) {
                    pla.dc.push(c);
                }
            }
            PlaType::Fr => {
                if let Some(c) = with_outputs(&off_parts) {
                    pla.off.push(c);
                }
            }
        }
    }

    Ok(pla)
}

fn render_line(dom: &Domain, c: &Cube, ni: usize, no: usize, on_char: char, rest_char: char) -> String {
    let ov = dom.require_output_var();
    let out_off = dom.var(ov).offset();
    let mut s = String::with_capacity(ni + no + 1);
    for v in 0..ni {
        let b0 = c.has_part(dom.var(v).offset());
        let b1 = c.has_part(dom.var(v).offset() + 1);
        s.push(match (b0, b1) {
            (true, true) => '-',
            (false, true) => '1',
            (true, false) => '0',
            (false, false) => '?',
        });
    }
    s.push(' ');
    for o in 0..no {
        s.push(if c.has_part(out_off + o) { on_char } else { rest_char });
    }
    s
}

/// Serializes a PLA in `fd` form: one line per on-set cube (outputs `1`/`0`)
/// followed by one line per dc-set cube (outputs `-`/`0`).
pub fn write_pla(pla: &Pla) -> String {
    let ni = pla.num_inputs();
    let no = pla.num_outputs();
    let mut out = String::new();
    let _ = writeln!(out, ".i {ni}");
    let _ = writeln!(out, ".o {no}");
    if !pla.input_labels.is_empty() {
        let _ = writeln!(out, ".ilb {}", pla.input_labels.join(" "));
    }
    if !pla.output_labels.is_empty() {
        let _ = writeln!(out, ".ob {}", pla.output_labels.join(" "));
    }
    let _ = writeln!(out, ".p {}", pla.on.len() + pla.dc.len());
    let _ = writeln!(out, ".type fd");
    for c in pla.on.iter() {
        let _ = writeln!(out, "{}", render_line(&pla.domain, c, ni, no, '1', '0'));
    }
    for c in pla.dc.iter() {
        let _ = writeln!(out, "{}", render_line(&pla.domain, c, ni, no, '-', '0'));
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equivalent;

    const SAMPLE: &str = "\
# two-bit adder slice
.i 3
.o 2
.ilb a b cin
.ob s cout
.type fd
110 01
101 01
011 01
111 1-
.e
";

    #[test]
    fn parse_basic_pla() {
        let pla = parse_pla(SAMPLE).unwrap();
        assert_eq!(pla.num_inputs(), 3);
        assert_eq!(pla.num_outputs(), 2);
        assert_eq!(pla.on.len(), 4);
        assert_eq!(pla.dc.len(), 1);
        assert_eq!(pla.input_labels, vec!["a", "b", "cin"]);
    }

    #[test]
    fn roundtrip_preserves_covers() {
        let pla = parse_pla(SAMPLE).unwrap();
        let text = write_pla(&pla);
        let back = parse_pla(&text).unwrap();
        assert!(equivalent(&pla.on, &back.on));
        assert!(equivalent(&pla.dc, &back.dc));
    }

    #[test]
    fn fr_type_reads_off_set() {
        let text = ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n";
        let pla = parse_pla(text).unwrap();
        assert_eq!(pla.on.len(), 1);
        assert_eq!(pla.off.len(), 1);
        assert!(pla.dc.is_empty());
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let text = ".i 2\n.o 1\n11Z 1\n.e\n";
        let err = parse_pla(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("3") || msg.contains("character"), "{msg}");
    }

    #[test]
    fn missing_directives_rejected() {
        assert!(parse_pla("11 1\n").is_err());
        assert!(parse_pla(".i 2\n11 1\n").is_err());
    }

    #[test]
    fn width_mismatch_rejected() {
        let text = ".i 2\n.o 1\n111 1\n.e\n";
        assert!(parse_pla(text).is_err());
    }

    #[test]
    fn oversized_declarations_rejected() {
        let limits = ParseLimits {
            max_inputs: 4,
            max_outputs: 2,
            ..ParseLimits::default()
        };
        let err = parse_pla_with(".i 100\n.o 1\n.e\n", &limits).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
        assert_eq!(err.line(), 1);
        assert!(parse_pla_with(".i 2\n.o 3\n.e\n", &limits).is_err());
        assert!(parse_pla_with(".i 2\n.o 1\n11 1\n.e\n", &limits).is_ok());
    }

    #[test]
    fn too_many_terms_rejected() {
        let limits = ParseLimits {
            max_terms: 2,
            ..ParseLimits::default()
        };
        let text = ".i 2\n.o 1\n00 1\n01 1\n10 1\n.e\n";
        let err = parse_pla_with(text, &limits).unwrap_err();
        assert_eq!(err.line(), 5);
    }

    #[test]
    fn overlong_line_rejected() {
        let limits = ParseLimits {
            max_line_len: 16,
            ..ParseLimits::default()
        };
        let text = format!(".i 2\n.o 1\n# {}\n11 1\n.e\n", "x".repeat(64));
        let err = parse_pla_with(&text, &limits).unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn injected_parse_fault_surfaces_as_error() {
        let _guard = chaos::arm("pla.parse", 0);
        let err = parse_pla(SAMPLE).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }

    #[test]
    fn empty_input_named_explicitly() {
        for text in ["", "   \n\t\n", "# only a comment\n"] {
            let err = parse_pla(text).unwrap_err();
            assert!(err.to_string().contains("empty input"), "{text:?}: {err}");
            assert_eq!(err.line(), 0);
        }
    }

    #[test]
    fn truncated_frame_rejected_with_line_number() {
        // as if the socket dropped mid-line: no trailing newline, no .e
        let text = ".i 3\n.o 2\n110 01\n101 0";
        let err = parse_pla(text).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(err.line(), 4);
        // the same bytes with the frame completed parse fine
        assert!(parse_pla(".i 3\n.o 2\n110 01\n101 01\n").is_ok());
        // an unterminated line is fine when .e closed the frame first
        assert!(parse_pla(".i 3\n.o 2\n110 01\n.e").is_ok());
    }
}
