//! Error types of the logic substrate.

use std::error::Error;
use std::fmt;

/// Error produced when parsing a PLA file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlaError {
    line: usize,
    message: String,
}

impl ParsePlaError {
    /// Creates an error at 1-based `line` (0 when no line applies).
    pub fn new(line: usize, message: &str) -> Self {
        ParsePlaError {
            line,
            message: message.to_owned(),
        }
    }

    /// The 1-based line number the error refers to, 0 for file-level errors.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid PLA: {}", self.message)
        } else {
            write!(f, "invalid PLA at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParsePlaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = ParsePlaError::new(7, "bad cube");
        assert_eq!(e.to_string(), "invalid PLA at line 7: bad cube");
        assert_eq!(e.line(), 7);
    }

    #[test]
    fn file_level_errors_have_no_line() {
        let e = ParsePlaError::new(0, "missing .i directive");
        assert!(!e.to_string().contains("line"));
    }
}
