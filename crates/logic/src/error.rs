//! Error types and input limits of the logic substrate.

use std::error::Error;
use std::fmt;

/// Hard caps applied while parsing untrusted PLA / multi-valued PLA / KISS2
/// text, so hostile or corrupt inputs fail fast with a diagnostic instead of
/// exhausting memory.
///
/// The defaults are far above anything in the benchmark suite (the largest
/// MCNC-style machines have dozens of states and a few hundred product
/// terms) while still bounding allocation to a few hundred megabytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum length of a single input line, in bytes.
    pub max_line_len: usize,
    /// Maximum number of product terms / transitions.
    pub max_terms: usize,
    /// Maximum number of (binary) input variables.
    pub max_inputs: usize,
    /// Maximum number of output functions.
    pub max_outputs: usize,
    /// Maximum number of symbolic states (KISS2) / values of one
    /// multi-valued variable.
    pub max_states: usize,
    /// Maximum total positional parts of the underlying domain
    /// (sum over variables of their value counts).
    pub max_parts: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_line_len: 1 << 16,
            max_terms: 1 << 20,
            max_inputs: 4096,
            max_outputs: 4096,
            max_states: 65_536,
            max_parts: 1 << 20,
        }
    }
}

impl ParseLimits {
    /// Limits suitable for trusted, in-repo inputs (same as `default`).
    pub fn generous() -> Self {
        ParseLimits::default()
    }
}

/// Error produced when parsing a PLA file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlaError {
    line: usize,
    message: String,
}

impl ParsePlaError {
    /// Creates an error at 1-based `line` (0 when no line applies).
    pub fn new(line: usize, message: &str) -> Self {
        ParsePlaError {
            line,
            message: message.to_owned(),
        }
    }

    /// The 1-based line number the error refers to, 0 for file-level errors.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParsePlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid PLA: {}", self.message)
        } else {
            write!(f, "invalid PLA at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParsePlaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line() {
        let e = ParsePlaError::new(7, "bad cube");
        assert_eq!(e.to_string(), "invalid PLA at line 7: bad cube");
        assert_eq!(e.line(), 7);
    }

    #[test]
    fn file_level_errors_have_no_line() {
        let e = ParsePlaError::new(0, "missing .i directive");
        assert!(!e.to_string().contains("line"));
    }
}
