//! Memoized minimization: [`MinimizeCache`] and the [`CoverEngine`]
//! selector.
//!
//! The evaluation pipeline prices an encoding by minimizing the encoded
//! constraint functions, and search loops (ENC-style probes, portfolio
//! sweeps) re-price covers they have already seen: a swap of two symbols
//! leaves every constraint containing neither of them untouched — a
//! byte-identical cover sequence. The cache memoizes *minimized cube
//! counts* keyed by that exact sequence, so repeat functions cost one hash
//! lookup instead of a full ESPRESSO run.
//!
//! Determinism: the key is the exact call — engine tag, domain shape, and
//! the on/dc cube sequences verbatim. ESPRESSO's result is order-sensitive
//! (stable sorts, first-cube-wins expansion), so reordered covers are
//! deliberately keyed apart: aliasing them would let a hit return a count
//! an uncached run would not. Because ESPRESSO is deterministic on a given
//! input sequence, every process — regardless of thread count or call
//! order — computes the same value for a given key, so cache hits can never
//! change a result, only skip recomputation. The capacity bound only stops
//! *inserting* (deterministically, by call order), never evicts, so a warm
//! entry stays warm. With the `minimize-cache` feature disabled the map is
//! compiled out and every call is an honest miss; results are bit-identical
//! either way, which the differential tests assert.
//!
//! Observability: every call bumps [`obs::Counter::MinimizeCalls`] and
//! exactly one of [`obs::Counter::MinimizeCacheHit`] /
//! [`obs::Counter::MinimizeCacheMiss`], so traces conserve
//! `hits + misses == calls`. A cache hit performs **zero** budget work —
//! the minimizer is never entered, so no `espresso.iter` ticks fire and
//! traced work totals stay conserved.

use crate::budget::Budget;
use crate::chaos;
use crate::cover::Cover;
use crate::espresso::{espresso_bounded, MinimizeOptions};
use crate::flat::{flat_minimized_len, MinimizeScratch};
use crate::obs;
#[cfg(feature = "minimize-cache")]
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which cover engine a minimization request should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverEngine {
    /// The flat engine ([`crate::flat_espresso_bounded`]), which handles
    /// **every** domain — single- and multi-word, binary and multi-valued —
    /// with no fallback. Bit-identical to `Legacy`; this is the only
    /// production engine.
    #[default]
    Flat,
    /// The legacy `Vec<Cube>` driver ([`crate::espresso_bounded`]) — kept
    /// selectable purely as the independent test oracle for the
    /// differential/property suites and the honest A/B bench legs. Release
    /// paths never choose it.
    Legacy,
}

impl CoverEngine {
    /// Stable short name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            CoverEngine::Flat => "flat",
            CoverEngine::Legacy => "legacy",
        }
    }
}

/// Default maximum number of memoized entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// A deterministic memo of minimized cube counts (see the module docs for
/// the determinism argument).
///
/// The cache owns its [`MinimizeScratch`], so a long-lived cache makes the
/// whole evaluate path allocation-free after warm-up. It is intentionally
/// *not* shared globally or thread-locally: every run owns its cache so
/// traces stay independent of thread count and scheduling.
#[derive(Debug)]
pub struct MinimizeCache {
    #[cfg(feature = "minimize-cache")]
    map: HashMap<Vec<u64>, usize>,
    capacity: usize,
    hits: u64,
    misses: u64,
    key: Vec<u64>,
    scratch: MinimizeScratch,
}

impl Default for MinimizeCache {
    fn default() -> Self {
        MinimizeCache::new()
    }
}

impl MinimizeCache {
    /// A fresh cache with [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> MinimizeCache {
        MinimizeCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A fresh cache that stops inserting once `capacity` entries are
    /// memoized (it never evicts, so results stay deterministic).
    pub fn with_capacity(capacity: usize) -> MinimizeCache {
        MinimizeCache {
            #[cfg(feature = "minimize-cache")]
            map: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
            key: Vec::new(),
            scratch: MinimizeScratch::new(),
        }
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the minimizer.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized entries (always 0 with the `minimize-cache`
    /// feature disabled).
    pub fn len(&self) -> usize {
        #[cfg(feature = "minimize-cache")]
        {
            self.map.len()
        }
        #[cfg(not(feature = "minimize-cache"))]
        {
            0
        }
    }

    /// Whether no entries are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimized cube count of `(on, dc)` under `engine`, answered through
    /// a **shared** [`GlobalMinimizeCache`] instead of this cache's private
    /// memo. This cache contributes only its key/scratch buffers (so the
    /// steady state still allocates nothing) and its hit/miss tallies, which
    /// keep per-run statistics meaningful in a server that shares one global
    /// cache across requests.
    ///
    /// Counter discipline is identical to [`MinimizeCache::minimized_cube_count`]:
    /// one `MinimizeCalls` bump plus exactly one of hit/miss, and a hit
    /// performs zero budget work. Chaos point `cache.shard` simulates a
    /// poisoned shard: the global map is bypassed and the call degrades to
    /// an honest miss (computed locally, never inserted) — bit-identical
    /// results, just slower.
    pub fn minimized_cube_count_shared(
        &mut self,
        global: &GlobalMinimizeCache,
        on: &Cover,
        dc: &Cover,
        engine: CoverEngine,
    ) -> usize {
        obs::count(obs::Counter::MinimizeCalls, 1);
        global.calls.fetch_add(1, Ordering::Relaxed);
        self.build_key(on, dc, engine);
        if chaos::should_fire("cache.shard") {
            // Shard poisoned: degrade to a miss without touching the map.
            global.poison_bypasses.fetch_add(1, Ordering::Relaxed);
            self.misses += 1;
            global.misses.fetch_add(1, Ordering::Relaxed);
            obs::count(obs::Counter::MinimizeCacheMiss, 1);
            return self.run(on, dc, engine);
        }
        if let Some(n) = global.lookup(&self.key) {
            self.hits += 1;
            global.hits.fetch_add(1, Ordering::Relaxed);
            obs::count(obs::Counter::MinimizeCacheHit, 1);
            return n;
        }
        self.misses += 1;
        global.misses.fetch_add(1, Ordering::Relaxed);
        obs::count(obs::Counter::MinimizeCacheMiss, 1);
        let n = self.run(on, dc, engine);
        global.insert(&self.key, n);
        n
    }

    /// Minimized cube count of `(on, dc)` under `engine`, memoized.
    ///
    /// Bumps `MinimizeCalls` plus exactly one of `MinimizeCacheHit` /
    /// `MinimizeCacheMiss`. A hit performs no budget work at all.
    pub fn minimized_cube_count(&mut self, on: &Cover, dc: &Cover, engine: CoverEngine) -> usize {
        obs::count(obs::Counter::MinimizeCalls, 1);
        self.build_key(on, dc, engine);
        #[cfg(feature = "minimize-cache")]
        if let Some(&n) = self.map.get(self.key.as_slice()) {
            self.hits += 1;
            obs::count(obs::Counter::MinimizeCacheHit, 1);
            return n;
        }
        self.misses += 1;
        obs::count(obs::Counter::MinimizeCacheMiss, 1);
        let n = self.run(on, dc, engine);
        #[cfg(feature = "minimize-cache")]
        if self.map.len() < self.capacity {
            self.map.insert(self.key.clone(), n);
        }
        n
    }

    /// [`MinimizeCache::minimized_cube_count`] without consulting or
    /// populating the memo — the cache-off leg of A/B comparisons, with the
    /// same counter discipline (every call is a miss).
    pub fn minimized_cube_count_uncached(
        &mut self,
        on: &Cover,
        dc: &Cover,
        engine: CoverEngine,
    ) -> usize {
        obs::count(obs::Counter::MinimizeCalls, 1);
        self.misses += 1;
        obs::count(obs::Counter::MinimizeCacheMiss, 1);
        self.run(on, dc, engine)
    }

    fn run(&mut self, on: &Cover, dc: &Cover, engine: CoverEngine) -> usize {
        minimize_count(on, dc, engine, &mut self.scratch)
    }

    /// Exact signature of `(engine, domain shape, on, dc)` into `self.key`:
    /// engine tag, variable count, per-variable part counts, on-set length,
    /// then the on and dc cube words in the caller's order. The minimizer's
    /// result depends on cube order (stable sorts, first-cube-wins
    /// expansion), so reordered covers must *not* share a key — a hit would
    /// otherwise return a count the uncached run disagrees with.
    fn build_key(&mut self, on: &Cover, dc: &Cover, engine: CoverEngine) {
        let dom = on.domain();
        let key = &mut self.key;
        key.clear();
        key.push(match engine {
            CoverEngine::Flat => 0,
            CoverEngine::Legacy => 1,
        });
        key.push(dom.num_vars() as u64);
        for v in 0..dom.num_vars() {
            key.push(dom.var(v).parts() as u64);
        }
        key.push(on.len() as u64);
        for c in on.iter() {
            key.extend_from_slice(c.words());
        }
        for c in dc.iter() {
            key.extend_from_slice(c.words());
        }
    }
}

/// Point-in-time statistics of a [`GlobalMinimizeCache`].
///
/// `hits + misses == calls` is the cross-shard conservation law the server
/// soak test asserts: `calls` is bumped once on entry, independently of
/// the hit/miss classification, so a code path that forgot to tally (or
/// double-tallied) an outcome shows up as a broken sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups routed through the cache (bumped on entry, before any
    /// hit/miss/poison classification).
    pub calls: u64,
    /// Lookups answered from a shard without running the minimizer.
    pub hits: u64,
    /// Lookups that ran the minimizer (cold entry, evicted entry, feature
    /// disabled, or a poisoned/chaos-bypassed shard).
    pub misses: u64,
    /// Lookups that bypassed the map because a shard was poisoned (real
    /// lock poisoning or the `cache.shard` chaos point). Always ≤ `misses`.
    pub poison_bypasses: u64,
    /// Memoized entries over all shards (both generations). May briefly
    /// exceed `capacity` by up to 50% — promote-on-hit parks an extra entry
    /// in a live generation until the next insert rebalances.
    pub entries: usize,
    /// Sum of every shard's eviction epoch (each epoch advance retired one
    /// generation of that shard).
    pub epoch_advances: u64,
    /// Number of shards.
    pub shards: usize,
    /// Total entry capacity over all shards.
    pub capacity: usize,
}

/// One shard of the global memo: two generations of entries under a mutex.
///
/// Eviction is *epoch-based*: when the live generation fills its per-shard
/// budget, the shard advances its epoch — the previous generation is
/// dropped wholesale and the live one becomes previous. A hit in the
/// previous generation promotes the entry back into the live one, so hot
/// covers survive any number of epochs while cold ones age out after two.
/// All reads and writes happen under the shard mutex and entries are moved
/// whole, so readers can never observe a torn entry; racing inserts of the
/// same key write the same value (the minimizer is deterministic on a given
/// cube sequence), so the cache can change only *work*, never results.
#[derive(Debug, Default)]
struct Shard {
    #[cfg(feature = "minimize-cache")]
    live: HashMap<Vec<u64>, usize>,
    #[cfg(feature = "minimize-cache")]
    prev: HashMap<Vec<u64>, usize>,
    epoch: u64,
}

/// A concurrent, sharded, capacity-bounded memo of minimized cube counts,
/// shared across requests by a long-running server.
///
/// Same keying and determinism contract as [`MinimizeCache`] (exact
/// engine + domain + cube-sequence signature; see the module docs), but:
///
/// * **Sharded** — keys are distributed over lock-striped shards by a
///   64-bit FNV-1a hash of the signature words, so concurrent workers
///   rarely contend. The minimizer never runs under a shard lock; a miss
///   computes outside and inserts afterwards (duplicate concurrent
///   computes of one key are benign: same value).
/// * **Epoch-evicting** — unlike the per-run cache's insert-only bound,
///   shards retire their oldest generation when full (see [`Shard`]), so a
///   server that sees millions of distinct covers keeps a bounded, hot
///   working set instead of freezing on the first `capacity` entries.
/// * **Poison-safe** — a worker that panics while holding a shard lock (or
///   the `cache.shard` chaos point) degrades lookups to honest misses; the
///   poisoned shard's entries are discarded and the shard keeps serving.
///
/// With the `minimize-cache` feature disabled the maps compile out and
/// every lookup is an honest miss, exactly like the per-run cache.
#[derive(Debug)]
pub struct GlobalMinimizeCache {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard live-generation capacity; total capacity is
    /// `shards.len() * 2 * shard_capacity` (two generations).
    shard_capacity: usize,
    calls: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    poison_bypasses: AtomicU64,
}

impl Default for GlobalMinimizeCache {
    fn default() -> Self {
        GlobalMinimizeCache::new()
    }
}

/// Default shard count of a [`GlobalMinimizeCache`].
pub const DEFAULT_CACHE_SHARDS: usize = 16;

impl GlobalMinimizeCache {
    /// A fresh global cache with [`DEFAULT_CACHE_CAPACITY`] total entries
    /// over [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new() -> GlobalMinimizeCache {
        GlobalMinimizeCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A fresh global cache bounded to roughly `capacity` total entries
    /// (over [`DEFAULT_CACHE_SHARDS`] shards).
    pub fn with_capacity(capacity: usize) -> GlobalMinimizeCache {
        GlobalMinimizeCache::with_capacity_and_shards(capacity, DEFAULT_CACHE_SHARDS)
    }

    /// A fresh global cache bounded to roughly `capacity` total entries
    /// distributed over `shards` lock-striped shards (both clamped to at
    /// least 1; capacities below `2 * shards` round up so every shard can
    /// hold at least one entry per generation).
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> GlobalMinimizeCache {
        let shards = shards.max(1);
        // Two generations per shard share the budget.
        let shard_capacity = capacity.div_ceil(shards * 2).max(1);
        GlobalMinimizeCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            calls: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            poison_bypasses: AtomicU64::new(0),
        }
    }

    /// Point-in-time statistics over all shards. `hits + misses == calls`
    /// by construction (`calls` is tallied on entry, the outcome after
    /// classification) — the conservation law the soak test asserts.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0usize;
        let mut epoch_advances = 0u64;
        for shard in self.shards.iter() {
            if let Ok(s) = shard.lock() {
                epoch_advances += s.epoch;
                #[cfg(feature = "minimize-cache")]
                {
                    entries += s.live.len() + s.prev.len();
                }
                #[cfg(not(feature = "minimize-cache"))]
                let _ = &s;
            }
        }
        CacheStats {
            calls: self.calls.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            poison_bypasses: self.poison_bypasses.load(Ordering::Relaxed),
            entries,
            epoch_advances,
            shards: self.shards.len(),
            capacity: self.shards.len() * 2 * self.shard_capacity,
        }
    }

    /// Total memoized entries (0 with the `minimize-cache` feature off).
    pub fn len(&self) -> usize {
        self.stats().entries
    }

    /// Whether no entries are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// FNV-1a over the signature words picks the shard, so the full hash
    /// map (with its own hasher) never sees systematically colliding keys.
    fn shard_index(&self, key: &[u64]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in key {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Recovers a shard guard from a poisoned mutex: the panicking holder
    /// cannot have left a *logically* torn entry (entries move whole), but
    /// fail safe anyway by discarding the shard's contents — correctness
    /// never depends on what the cache remembers.
    fn shard(&self, index: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[index].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.poison_bypasses.fetch_add(1, Ordering::Relaxed);
                let mut guard = poisoned.into_inner();
                *guard = Shard {
                    epoch: guard.epoch.saturating_add(1),
                    ..Shard::default()
                };
                self.shards[index].clear_poison();
                guard
            }
        }
    }

    /// Looks `key` up; a hit in the previous generation is promoted into
    /// the live one. Does not touch the hit/miss tallies — the calling
    /// [`MinimizeCache::minimized_cube_count_shared`] owns the counter
    /// discipline.
    #[cfg_attr(not(feature = "minimize-cache"), allow(unused_variables))]
    fn lookup(&self, key: &[u64]) -> Option<usize> {
        #[cfg(feature = "minimize-cache")]
        {
            let index = self.shard_index(key);
            let mut shard = self.shard(index);
            if let Some(&n) = shard.live.get(key) {
                return Some(n);
            }
            if let Some(n) = shard.prev.remove(key) {
                // Promote: hot entries survive any number of epochs. The
                // live generation may momentarily exceed its budget here;
                // the next insert rebalances.
                shard.live.insert(key.to_vec(), n);
                return Some(n);
            }
            None
        }
        #[cfg(not(feature = "minimize-cache"))]
        {
            None
        }
    }

    /// Inserts `key → value`, advancing the shard's epoch (retiring the
    /// previous generation) when the live one is full.
    #[cfg_attr(not(feature = "minimize-cache"), allow(unused_variables))]
    fn insert(&self, key: &[u64], value: usize) {
        #[cfg(feature = "minimize-cache")]
        {
            let index = self.shard_index(key);
            let mut shard = self.shard(index);
            if shard.live.len() >= self.shard_capacity {
                shard.epoch = shard.epoch.saturating_add(1);
                shard.prev = std::mem::take(&mut shard.live);
            }
            shard.live.insert(key.to_vec(), value);
        }
    }
}

/// One uncached, uncounted minimization of `(on, dc)` under `engine`,
/// drawing buffers from `scratch` — the shared kernel behind the memo's
/// miss path and the one-shot [`crate::minimized_cube_count`] wrapper.
pub(crate) fn minimize_count(
    on: &Cover,
    dc: &Cover,
    engine: CoverEngine,
    scratch: &mut MinimizeScratch,
) -> usize {
    match engine {
        CoverEngine::Flat => flat_minimized_len(on, dc, scratch),
        CoverEngine::Legacy => {
            espresso_bounded(on, dc, &MinimizeOptions::default(), &Budget::unlimited())
                .0
                .len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::cube::Cube;
    use crate::domain::Domain;
    use crate::espresso::espresso;

    fn cover_from_codes(dom: &Domain, nv: usize, codes: &[u32]) -> Cover {
        let mut c = Cover::empty(dom);
        for &code in codes {
            let mut cube = Cube::full(dom);
            for v in 0..nv {
                cube.restrict_binary(dom, v, code >> v & 1 != 0);
            }
            c.push(cube);
        }
        c
    }

    #[test]
    fn cache_returns_minimizer_result() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 1, 2, 3]);
        let dc = Cover::empty(&dom);
        let expected = espresso(&on, &dc).len();
        let mut cache = MinimizeCache::new();
        for engine in [CoverEngine::Flat, CoverEngine::Legacy] {
            assert_eq!(cache.minimized_cube_count(&on, &dc, engine), expected);
        }
    }

    #[test]
    fn repeat_queries_hit() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 5, 7]);
        let dc = cover_from_codes(&dom, 3, &[1]);
        let mut cache = MinimizeCache::new();
        let a = cache.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        let b = cache.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        assert_eq!(a, b);
        #[cfg(feature = "minimize-cache")]
        {
            assert_eq!(cache.misses(), 1);
            assert_eq!(cache.hits(), 1);
            assert_eq!(cache.len(), 1);
        }
        #[cfg(not(feature = "minimize-cache"))]
        {
            assert_eq!(cache.hits(), 0);
            assert_eq!(cache.misses(), 2);
        }
    }

    #[test]
    fn reordered_covers_are_keyed_apart() {
        let dom = Domain::binary(3);
        let on_a = cover_from_codes(&dom, 3, &[0, 5, 7]);
        let on_b = cover_from_codes(&dom, 3, &[7, 0, 5]);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::new();
        let a = cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat);
        let b = cache.minimized_cube_count(&on_b, &dc, CoverEngine::Flat);
        // each order computes its own entry; repeating either order hits it
        assert_eq!(cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat), a);
        assert_eq!(cache.minimized_cube_count(&on_b, &dc, CoverEngine::Flat), b);
        #[cfg(feature = "minimize-cache")]
        {
            assert_eq!(cache.len(), 2);
            assert_eq!(cache.misses(), 2);
            assert_eq!(cache.hits(), 2);
        }
    }

    /// Regression for the order-sensitivity bug: ESPRESSO can minimize a
    /// cover and its reversal to *different* cube counts (stable sorts,
    /// first-cube-wins expansion), so a key that unified reorderings let a
    /// hit return a count an uncached run would not. Every cached answer
    /// must equal an uncached run on the same cube sequence.
    #[test]
    fn cached_result_always_matches_uncached_for_any_order() {
        let dom = Domain::binary(3);
        let codes = [0u32, 3, 4, 6, 7];
        let mut reversed = codes;
        reversed.reverse();
        let dc = cover_from_codes(&dom, 3, &[1]);
        let mut cache = MinimizeCache::new();
        for order in [&codes[..], &reversed[..]] {
            let on = cover_from_codes(&dom, 3, order);
            for engine in [CoverEngine::Flat, CoverEngine::Legacy] {
                let fresh =
                    MinimizeCache::new().minimized_cube_count_uncached(&on, &dc, engine);
                // first lookup (a miss) and second lookup (a hit with the
                // feature on) must both agree with the uncached run
                assert_eq!(cache.minimized_cube_count(&on, &dc, engine), fresh);
                assert_eq!(cache.minimized_cube_count(&on, &dc, engine), fresh);
            }
        }
    }

    #[test]
    fn capacity_bounds_insertions_without_evicting() {
        let dom = Domain::binary(3);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::with_capacity(1);
        let on_a = cover_from_codes(&dom, 3, &[0]);
        let on_b = cover_from_codes(&dom, 3, &[1]);
        let _ = cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat);
        let _ = cache.minimized_cube_count(&on_b, &dc, CoverEngine::Flat);
        let _ = cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat);
        assert!(cache.len() <= 1);
        #[cfg(feature = "minimize-cache")]
        {
            // the first cover stays warm; the second never inserts
            assert_eq!(cache.hits(), 1);
            assert_eq!(cache.misses(), 2);
        }
    }

    /// Regression for the capacity *boundary*: the bound is `len() <
    /// capacity`, so the insert that lands exactly at capacity must still
    /// be memoized (off-by-one here silently wasted the last slot), and
    /// the first insert past capacity must be the one refused.
    #[test]
    fn insert_at_exactly_capacity_is_memoized() {
        let dom = Domain::binary(3);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::with_capacity(2);
        let covers: Vec<Cover> =
            (0..3).map(|i| cover_from_codes(&dom, 3, &[i])).collect();
        for on in &covers {
            let _ = cache.minimized_cube_count(on, &dc, CoverEngine::Flat);
        }
        #[cfg(feature = "minimize-cache")]
        {
            assert_eq!(cache.len(), 2, "slot at exactly capacity is used");
            // repeats: the two memoized covers hit, the refused third misses
            for on in &covers {
                let _ = cache.minimized_cube_count(on, &dc, CoverEngine::Flat);
            }
            assert_eq!(cache.hits(), 2);
            assert_eq!(cache.misses(), 4);
        }
    }

    #[test]
    fn global_cache_shares_hits_across_runs() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 5, 7]);
        let dc = cover_from_codes(&dom, 3, &[1]);
        let global = GlobalMinimizeCache::new();
        let mut run_a = MinimizeCache::new();
        let mut run_b = MinimizeCache::new();
        let a = run_a.minimized_cube_count_shared(&global, &on, &dc, CoverEngine::Flat);
        // a *different* per-run cache sees the global entry
        let b = run_b.minimized_cube_count_shared(&global, &on, &dc, CoverEngine::Flat);
        assert_eq!(a, b);
        let uncached = MinimizeCache::new().minimized_cube_count_uncached(
            &on,
            &dc,
            CoverEngine::Flat,
        );
        assert_eq!(a, uncached, "shared hits stay bit-identical to uncached");
        let stats = global.stats();
        assert_eq!(stats.hits + stats.misses, 2, "conservation across shards");
        #[cfg(feature = "minimize-cache")]
        {
            assert_eq!(stats.hits, 1);
            assert_eq!(stats.misses, 1);
            assert_eq!(run_b.hits(), 1, "per-run tallies still meaningful");
            assert_eq!(global.len(), 1);
        }
        #[cfg(not(feature = "minimize-cache"))]
        {
            assert_eq!(stats.hits, 0);
            assert_eq!(stats.misses, 2);
            assert!(global.is_empty());
        }
    }

    #[cfg(feature = "minimize-cache")]
    #[test]
    fn global_cache_epoch_eviction_keeps_hot_entries() {
        let dom = Domain::binary(4);
        let dc = Cover::empty(&dom);
        // One shard, one entry per generation: every insert past the first
        // advances the epoch, yet a promoted (hot) entry keeps hitting.
        let global = GlobalMinimizeCache::with_capacity_and_shards(2, 1);
        let mut cache = MinimizeCache::new();
        let hot = cover_from_codes(&dom, 4, &[0, 3]);
        let _ = cache.minimized_cube_count_shared(&global, &hot, &dc, CoverEngine::Flat);
        for i in 1..8u32 {
            let cold = cover_from_codes(&dom, 4, &[i]);
            let _ = cache.minimized_cube_count_shared(&global, &cold, &dc, CoverEngine::Flat);
            // touching the hot cover promotes it out of the retiring generation
            let _ = cache.minimized_cube_count_shared(&global, &hot, &dc, CoverEngine::Flat);
        }
        let stats = global.stats();
        assert!(stats.epoch_advances > 0, "evictions actually happened");
        // promote-on-hit may briefly push a live generation over its budget
        // (rebalanced at the next insert), so the hard bound is 1.5x nominal
        assert!(
            stats.entries <= stats.capacity + stats.capacity / 2,
            "bounded despite churn: {} entries vs capacity {}",
            stats.entries,
            stats.capacity
        );
        assert_eq!(stats.hits, 7, "hot cover survived every epoch");
        assert_eq!(stats.hits + stats.misses, 15, "conservation holds");
    }

    #[test]
    fn global_cache_chaos_shard_poison_degrades_to_miss() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 5, 7]);
        let dc = Cover::empty(&dom);
        let global = GlobalMinimizeCache::new();
        let mut cache = MinimizeCache::new();
        let clean = cache.minimized_cube_count_shared(&global, &on, &dc, CoverEngine::Flat);
        let poisoned = {
            let _guard = chaos::arm("cache.shard", 0);
            cache.minimized_cube_count_shared(&global, &on, &dc, CoverEngine::Flat)
        };
        assert_eq!(poisoned, clean, "poisoned shard changes work, not results");
        let stats = global.stats();
        assert_eq!(stats.poison_bypasses, 1);
        assert_eq!(stats.hits + stats.misses, 2, "bypass still counted as a miss");
        // disarmed again: the entry (inserted by the clean miss) hits
        let after = cache.minimized_cube_count_shared(&global, &on, &dc, CoverEngine::Flat);
        assert_eq!(after, clean);
        #[cfg(feature = "minimize-cache")]
        assert_eq!(global.stats().hits, 1);
    }

    #[cfg(feature = "minimize-cache")]
    #[test]
    fn global_cache_is_usable_concurrently() {
        use std::sync::Arc;
        let dom = Domain::binary(4);
        let global = Arc::new(GlobalMinimizeCache::with_capacity_and_shards(64, 4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let global = Arc::clone(&global);
                let dom = dom.clone();
                std::thread::spawn(move || {
                    let dc = Cover::empty(&dom);
                    let mut cache = MinimizeCache::new();
                    let mut counts = Vec::new();
                    for i in 0..8u32 {
                        // every thread prices the same 8 covers
                        let on = cover_from_codes(&dom, 4, &[i, (i + t) % 8]);
                        counts.push(cache.minimized_cube_count_shared(
                            &global,
                            &on,
                            &dc,
                            CoverEngine::Flat,
                        ));
                    }
                    counts
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.push(h.join().expect("worker thread panicked"));
        }
        // every thread's answers agree with a fresh uncached run
        for (t, counts) in all.iter().enumerate() {
            let dc = Cover::empty(&dom);
            for (i, &n) in counts.iter().enumerate() {
                let on = cover_from_codes(&dom, 4, &[i as u32, (i as u32 + t as u32) % 8]);
                let fresh = MinimizeCache::new().minimized_cube_count_uncached(
                    &on,
                    &dc,
                    CoverEngine::Flat,
                );
                assert_eq!(n, fresh);
            }
        }
        let stats = global.stats();
        assert_eq!(stats.hits + stats.misses, 32, "conservation across threads");
    }

    #[test]
    fn uncached_path_counts_misses() {
        let dom = Domain::binary(2);
        let on = cover_from_codes(&dom, 2, &[0, 1]);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::new();
        let a = cache.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat);
        let b = cache.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat);
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
    }

    /// Re-interprets a cover's exact raw cube words in another domain of
    /// the same word stride — the adversarial input for key-collision tests.
    fn reinterpret(cover: &Cover, dom: &Domain) -> Cover {
        assert_eq!(cover.domain().words(), dom.words());
        Cover::from_cubes(
            dom,
            cover.iter().map(|c| Cube::from_raw_words(c.words().to_vec())),
        )
    }

    #[test]
    fn equal_bit_width_different_part_strides_never_share_an_entry() {
        // binary(2) (parts 2+2) and multi(4) (parts 4) pack to the same
        // single word, and the on-set {00, 11} has byte-identical cube
        // words in both — but the functions differ: the binary cover stays
        // two cubes while the 4-valued literals {0,2} and {1,3} merge to
        // the universe. A key that ignored part strides would hand the
        // second domain the first domain's count.
        let d1 = Domain::binary(2);
        let on1 = cover_from_codes(&d1, 2, &[0, 3]);
        let dc1 = Cover::empty(&d1);
        let d2 = crate::domain::DomainBuilder::new().multi("s", 4).build();
        let on2 = reinterpret(&on1, &d2);
        let dc2 = Cover::empty(&d2);
        assert_eq!(on1.iter().next().unwrap().words(), on2.iter().next().unwrap().words());

        let mut cache = MinimizeCache::new();
        let c1 = cache.minimized_cube_count(&on1, &dc1, CoverEngine::Flat);
        let c2 = cache.minimized_cube_count(&on2, &dc2, CoverEngine::Flat);
        assert_eq!(c1, 2, "binary cover: 00 and 11 cannot merge");
        assert_eq!(c2, 1, "4-valued cover: {{0,2}} ∪ {{1,3}} is the universe");
        assert_eq!(cache.hits(), 0, "cross-domain lookup must not hit");
        assert_eq!(cache.misses(), 2);
        // repeat lookups now hit, each within its own domain's entry
        assert_eq!(cache.minimized_cube_count(&on1, &dc1, CoverEngine::Flat), 2);
        assert_eq!(cache.minimized_cube_count(&on2, &dc2, CoverEngine::Flat), 1);
    }

    #[test]
    fn same_var_count_swapped_part_strides_are_keyed_apart() {
        // multi(3)+multi(5) vs multi(5)+multi(3): same word count, same
        // number of variables, same total parts — only the per-variable
        // stride differs, which is exactly what the key's parts section
        // must capture.
        let d1 = crate::domain::DomainBuilder::new()
            .multi("a", 3)
            .multi("b", 5)
            .build();
        let d2 = crate::domain::DomainBuilder::new()
            .multi("a", 5)
            .multi("b", 3)
            .build();
        let mut on1 = Cover::empty(&d1);
        for part in [0usize, 1] {
            let mut c = Cube::full(&d1);
            c.restrict(&d1, 0, part);
            on1.push(c);
        }
        let dc1 = Cover::empty(&d1);
        let on2 = reinterpret(&on1, &d2);
        let dc2 = Cover::empty(&d2);

        let mut cache = MinimizeCache::new();
        let c1 = cache.minimized_cube_count(&on1, &dc1, CoverEngine::Flat);
        let c2 = cache.minimized_cube_count(&on2, &dc2, CoverEngine::Flat);
        assert_eq!(cache.hits(), 0, "swapped strides must not share an entry");
        assert_eq!(cache.misses(), 2);
        let f1 = MinimizeCache::new().minimized_cube_count_uncached(&on1, &dc1, CoverEngine::Flat);
        let f2 = MinimizeCache::new().minimized_cube_count_uncached(&on2, &dc2, CoverEngine::Flat);
        assert_eq!(c1, f1);
        assert_eq!(c2, f2);
    }

    #[test]
    fn global_cache_keys_equal_bit_width_domains_apart() {
        let d1 = Domain::binary(2);
        let on1 = cover_from_codes(&d1, 2, &[0, 3]);
        let dc1 = Cover::empty(&d1);
        let d2 = crate::domain::DomainBuilder::new().multi("s", 4).build();
        let on2 = reinterpret(&on1, &d2);
        let dc2 = Cover::empty(&d2);

        let global = GlobalMinimizeCache::new();
        let mut cache = MinimizeCache::new();
        let c1 = cache.minimized_cube_count_shared(&global, &on1, &dc1, CoverEngine::Flat);
        let c2 = cache.minimized_cube_count_shared(&global, &on2, &dc2, CoverEngine::Flat);
        assert_eq!((c1, c2), (2, 1));
        let stats = global.stats();
        assert_eq!(stats.hits, 0, "cross-domain lookup must not hit a shard");
        assert_eq!(stats.misses, 2);
        // warm repeats hit each domain's own entry and keep the values
        assert_eq!(
            cache.minimized_cube_count_shared(&global, &on1, &dc1, CoverEngine::Flat),
            2
        );
        assert_eq!(
            cache.minimized_cube_count_shared(&global, &on2, &dc2, CoverEngine::Flat),
            1
        );
    }

    #[test]
    fn engines_agree_on_multi_word_domains() {
        // 33 binary vars: two words, handled by the flat multi-word engine
        // (no fallback — the legacy leg below is the independent oracle).
        let dom = Domain::binary(33);
        let mut on = Cover::empty(&dom);
        let mut c0 = Cube::full(&dom);
        c0.restrict_binary(&dom, 0, false);
        let mut c1 = Cube::full(&dom);
        c1.restrict_binary(&dom, 0, true);
        on.push(c0);
        on.push(c1);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::new();
        let f = cache.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        let l = cache.minimized_cube_count(&on, &dc, CoverEngine::Legacy);
        assert_eq!(f, l);
        assert_eq!(f, 1);
    }
}
