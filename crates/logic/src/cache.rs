//! Memoized minimization: [`MinimizeCache`] and the [`CoverEngine`]
//! selector.
//!
//! The evaluation pipeline prices an encoding by minimizing the encoded
//! constraint functions, and search loops (ENC-style probes, portfolio
//! sweeps) re-price covers they have already seen: a swap of two symbols
//! leaves every constraint containing neither of them untouched — a
//! byte-identical cover sequence. The cache memoizes *minimized cube
//! counts* keyed by that exact sequence, so repeat functions cost one hash
//! lookup instead of a full ESPRESSO run.
//!
//! Determinism: the key is the exact call — engine tag, domain shape, and
//! the on/dc cube sequences verbatim. ESPRESSO's result is order-sensitive
//! (stable sorts, first-cube-wins expansion), so reordered covers are
//! deliberately keyed apart: aliasing them would let a hit return a count
//! an uncached run would not. Because ESPRESSO is deterministic on a given
//! input sequence, every process — regardless of thread count or call
//! order — computes the same value for a given key, so cache hits can never
//! change a result, only skip recomputation. The capacity bound only stops
//! *inserting* (deterministically, by call order), never evicts, so a warm
//! entry stays warm. With the `minimize-cache` feature disabled the map is
//! compiled out and every call is an honest miss; results are bit-identical
//! either way, which the differential tests assert.
//!
//! Observability: every call bumps [`obs::Counter::MinimizeCalls`] and
//! exactly one of [`obs::Counter::MinimizeCacheHit`] /
//! [`obs::Counter::MinimizeCacheMiss`], so traces conserve
//! `hits + misses == calls`. A cache hit performs **zero** budget work —
//! the minimizer is never entered, so no `espresso.iter` ticks fire and
//! traced work totals stay conserved.

use crate::budget::Budget;
use crate::cover::Cover;
use crate::espresso::{espresso_bounded, MinimizeOptions};
use crate::flat::{cover_to_words, espresso_words, flat_eligible, BinCtx, MinimizeScratch};
use crate::obs;
#[cfg(feature = "minimize-cache")]
use std::collections::HashMap;

/// Which cover engine a minimization request should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverEngine {
    /// The flat single-word engine ([`crate::flat_espresso_bounded`]) with
    /// automatic fallback to the legacy driver on ineligible domains.
    /// Bit-identical to `Legacy`; this is the fast default.
    #[default]
    Flat,
    /// The legacy `Vec<Cube>` driver ([`crate::espresso_bounded`]) — kept
    /// selectable as the differential reference and the honest A/B bench
    /// leg.
    Legacy,
}

impl CoverEngine {
    /// Stable short name (bench/report labels).
    pub fn name(self) -> &'static str {
        match self {
            CoverEngine::Flat => "flat",
            CoverEngine::Legacy => "legacy",
        }
    }
}

/// Default maximum number of memoized entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 16;

/// A deterministic memo of minimized cube counts (see the module docs for
/// the determinism argument).
///
/// The cache owns its [`MinimizeScratch`], so a long-lived cache makes the
/// whole evaluate path allocation-free after warm-up. It is intentionally
/// *not* shared globally or thread-locally: every run owns its cache so
/// traces stay independent of thread count and scheduling.
#[derive(Debug)]
pub struct MinimizeCache {
    #[cfg(feature = "minimize-cache")]
    map: HashMap<Vec<u64>, usize>,
    capacity: usize,
    hits: u64,
    misses: u64,
    key: Vec<u64>,
    scratch: MinimizeScratch,
}

impl Default for MinimizeCache {
    fn default() -> Self {
        MinimizeCache::new()
    }
}

impl MinimizeCache {
    /// A fresh cache with [`DEFAULT_CACHE_CAPACITY`].
    pub fn new() -> MinimizeCache {
        MinimizeCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A fresh cache that stops inserting once `capacity` entries are
    /// memoized (it never evicts, so results stay deterministic).
    pub fn with_capacity(capacity: usize) -> MinimizeCache {
        MinimizeCache {
            #[cfg(feature = "minimize-cache")]
            map: HashMap::new(),
            capacity,
            hits: 0,
            misses: 0,
            key: Vec::new(),
            scratch: MinimizeScratch::new(),
        }
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the minimizer.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized entries (always 0 with the `minimize-cache`
    /// feature disabled).
    pub fn len(&self) -> usize {
        #[cfg(feature = "minimize-cache")]
        {
            self.map.len()
        }
        #[cfg(not(feature = "minimize-cache"))]
        {
            0
        }
    }

    /// Whether no entries are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Minimized cube count of `(on, dc)` under `engine`, memoized.
    ///
    /// Bumps `MinimizeCalls` plus exactly one of `MinimizeCacheHit` /
    /// `MinimizeCacheMiss`. A hit performs no budget work at all.
    pub fn minimized_cube_count(&mut self, on: &Cover, dc: &Cover, engine: CoverEngine) -> usize {
        obs::count(obs::Counter::MinimizeCalls, 1);
        self.build_key(on, dc, engine);
        #[cfg(feature = "minimize-cache")]
        if let Some(&n) = self.map.get(self.key.as_slice()) {
            self.hits += 1;
            obs::count(obs::Counter::MinimizeCacheHit, 1);
            return n;
        }
        self.misses += 1;
        obs::count(obs::Counter::MinimizeCacheMiss, 1);
        let n = self.run(on, dc, engine);
        #[cfg(feature = "minimize-cache")]
        if self.map.len() < self.capacity {
            self.map.insert(self.key.clone(), n);
        }
        n
    }

    /// [`MinimizeCache::minimized_cube_count`] without consulting or
    /// populating the memo — the cache-off leg of A/B comparisons, with the
    /// same counter discipline (every call is a miss).
    pub fn minimized_cube_count_uncached(
        &mut self,
        on: &Cover,
        dc: &Cover,
        engine: CoverEngine,
    ) -> usize {
        obs::count(obs::Counter::MinimizeCalls, 1);
        self.misses += 1;
        obs::count(obs::Counter::MinimizeCacheMiss, 1);
        self.run(on, dc, engine)
    }

    fn run(&mut self, on: &Cover, dc: &Cover, engine: CoverEngine) -> usize {
        minimize_count(on, dc, engine, &mut self.scratch)
    }

    /// Exact signature of `(engine, domain shape, on, dc)` into `self.key`:
    /// engine tag, variable count, per-variable part counts, on-set length,
    /// then the on and dc cube words in the caller's order. The minimizer's
    /// result depends on cube order (stable sorts, first-cube-wins
    /// expansion), so reordered covers must *not* share a key — a hit would
    /// otherwise return a count the uncached run disagrees with.
    fn build_key(&mut self, on: &Cover, dc: &Cover, engine: CoverEngine) {
        let dom = on.domain();
        let key = &mut self.key;
        key.clear();
        key.push(match engine {
            CoverEngine::Flat => 0,
            CoverEngine::Legacy => 1,
        });
        key.push(dom.num_vars() as u64);
        for v in 0..dom.num_vars() {
            key.push(dom.var(v).parts() as u64);
        }
        key.push(on.len() as u64);
        for c in on.iter() {
            key.extend_from_slice(c.words());
        }
        for c in dc.iter() {
            key.extend_from_slice(c.words());
        }
    }
}

/// One uncached, uncounted minimization of `(on, dc)` under `engine`,
/// drawing buffers from `scratch` — the shared kernel behind the memo's
/// miss path and the one-shot [`crate::minimized_cube_count`] wrapper.
pub(crate) fn minimize_count(
    on: &Cover,
    dc: &Cover,
    engine: CoverEngine,
    scratch: &mut MinimizeScratch,
) -> usize {
    match engine {
        CoverEngine::Flat if flat_eligible(on.domain()) => {
            let ctx = BinCtx::new(on.domain());
            let mut on_w = scratch.take();
            cover_to_words(on, &mut on_w);
            let mut dc_w = scratch.take();
            cover_to_words(dc, &mut dc_w);
            let (f, _) = espresso_words(
                ctx,
                &on_w,
                &dc_w,
                &MinimizeOptions::default(),
                &Budget::unlimited(),
                scratch,
            );
            let n = f.len();
            scratch.give(f);
            scratch.give(dc_w);
            scratch.give(on_w);
            n
        }
        _ => {
            espresso_bounded(on, dc, &MinimizeOptions::default(), &Budget::unlimited())
                .0
                .len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::cube::Cube;
    use crate::domain::Domain;
    use crate::espresso::espresso;

    fn cover_from_codes(dom: &Domain, nv: usize, codes: &[u32]) -> Cover {
        let mut c = Cover::empty(dom);
        for &code in codes {
            let mut cube = Cube::full(dom);
            for v in 0..nv {
                cube.restrict_binary(dom, v, code >> v & 1 != 0);
            }
            c.push(cube);
        }
        c
    }

    #[test]
    fn cache_returns_minimizer_result() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 1, 2, 3]);
        let dc = Cover::empty(&dom);
        let expected = espresso(&on, &dc).len();
        let mut cache = MinimizeCache::new();
        for engine in [CoverEngine::Flat, CoverEngine::Legacy] {
            assert_eq!(cache.minimized_cube_count(&on, &dc, engine), expected);
        }
    }

    #[test]
    fn repeat_queries_hit() {
        let dom = Domain::binary(3);
        let on = cover_from_codes(&dom, 3, &[0, 5, 7]);
        let dc = cover_from_codes(&dom, 3, &[1]);
        let mut cache = MinimizeCache::new();
        let a = cache.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        let b = cache.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        assert_eq!(a, b);
        #[cfg(feature = "minimize-cache")]
        {
            assert_eq!(cache.misses(), 1);
            assert_eq!(cache.hits(), 1);
            assert_eq!(cache.len(), 1);
        }
        #[cfg(not(feature = "minimize-cache"))]
        {
            assert_eq!(cache.hits(), 0);
            assert_eq!(cache.misses(), 2);
        }
    }

    #[test]
    fn reordered_covers_are_keyed_apart() {
        let dom = Domain::binary(3);
        let on_a = cover_from_codes(&dom, 3, &[0, 5, 7]);
        let on_b = cover_from_codes(&dom, 3, &[7, 0, 5]);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::new();
        let a = cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat);
        let b = cache.minimized_cube_count(&on_b, &dc, CoverEngine::Flat);
        // each order computes its own entry; repeating either order hits it
        assert_eq!(cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat), a);
        assert_eq!(cache.minimized_cube_count(&on_b, &dc, CoverEngine::Flat), b);
        #[cfg(feature = "minimize-cache")]
        {
            assert_eq!(cache.len(), 2);
            assert_eq!(cache.misses(), 2);
            assert_eq!(cache.hits(), 2);
        }
    }

    /// Regression for the order-sensitivity bug: ESPRESSO can minimize a
    /// cover and its reversal to *different* cube counts (stable sorts,
    /// first-cube-wins expansion), so a key that unified reorderings let a
    /// hit return a count an uncached run would not. Every cached answer
    /// must equal an uncached run on the same cube sequence.
    #[test]
    fn cached_result_always_matches_uncached_for_any_order() {
        let dom = Domain::binary(3);
        let codes = [0u32, 3, 4, 6, 7];
        let mut reversed = codes;
        reversed.reverse();
        let dc = cover_from_codes(&dom, 3, &[1]);
        let mut cache = MinimizeCache::new();
        for order in [&codes[..], &reversed[..]] {
            let on = cover_from_codes(&dom, 3, order);
            for engine in [CoverEngine::Flat, CoverEngine::Legacy] {
                let fresh =
                    MinimizeCache::new().minimized_cube_count_uncached(&on, &dc, engine);
                // first lookup (a miss) and second lookup (a hit with the
                // feature on) must both agree with the uncached run
                assert_eq!(cache.minimized_cube_count(&on, &dc, engine), fresh);
                assert_eq!(cache.minimized_cube_count(&on, &dc, engine), fresh);
            }
        }
    }

    #[test]
    fn capacity_bounds_insertions_without_evicting() {
        let dom = Domain::binary(3);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::with_capacity(1);
        let on_a = cover_from_codes(&dom, 3, &[0]);
        let on_b = cover_from_codes(&dom, 3, &[1]);
        let _ = cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat);
        let _ = cache.minimized_cube_count(&on_b, &dc, CoverEngine::Flat);
        let _ = cache.minimized_cube_count(&on_a, &dc, CoverEngine::Flat);
        assert!(cache.len() <= 1);
        #[cfg(feature = "minimize-cache")]
        {
            // the first cover stays warm; the second never inserts
            assert_eq!(cache.hits(), 1);
            assert_eq!(cache.misses(), 2);
        }
    }

    #[test]
    fn uncached_path_counts_misses() {
        let dom = Domain::binary(2);
        let on = cover_from_codes(&dom, 2, &[0, 1]);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::new();
        let a = cache.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat);
        let b = cache.minimized_cube_count_uncached(&on, &dc, CoverEngine::Flat);
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn engines_agree_on_mixed_domains_via_fallback() {
        // 33 binary vars: two words, flat falls back to legacy internally.
        let dom = Domain::binary(33);
        let mut on = Cover::empty(&dom);
        let mut c0 = Cube::full(&dom);
        c0.restrict_binary(&dom, 0, false);
        let mut c1 = Cube::full(&dom);
        c1.restrict_binary(&dom, 0, true);
        on.push(c0);
        on.push(c1);
        let dc = Cover::empty(&dom);
        let mut cache = MinimizeCache::new();
        let f = cache.minimized_cube_count(&on, &dc, CoverEngine::Flat);
        let l = cache.minimized_cube_count(&on, &dc, CoverEngine::Legacy);
        assert_eq!(f, l);
        assert_eq!(f, 1);
    }
}
