//! Deterministic fault injection for robustness tests.
//!
//! A *chaos plan* names one trigger point and a hit count; once armed (per
//! thread), the `n`-th time execution reaches that point the fault fires:
//! [`crate::budget::Budget::tick`] reports exhaustion with
//! [`crate::budget::ExhaustReason::Injected`], and the hardened parsers
//! return an injected parse error. Tests use this to drive every
//! degradation path deterministically — no timing dependence, no
//! hoping a tiny real budget happens to run out in the right place.
//!
//! The harness is compiled in unconditionally but designed for tests: the
//! disarmed fast path is a single thread-local flag read plus one relaxed
//! atomic load, and plans are thread-local so parallel test threads cannot
//! interfere. Production callers simply never arm a plan.
//!
//! Parallel-portfolio tests need faults that fire **inside worker
//! threads** the test did not create; [`arm_global`] installs a
//! process-wide plan for that. Global plans are a shared resource — tests
//! that arm one must serialize among themselves.
//!
//! ```
//! use picola_logic::budget::Budget;
//! use picola_logic::chaos;
//!
//! let _guard = chaos::arm("espresso.iter", 0);
//! let budget = Budget::unlimited();
//! assert!(!budget.tick("espresso.iter", 1)); // fault fires immediately
//! assert!(budget.is_exhausted());
//! ```

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Every trigger point registered across the workspace.
///
/// Algorithm points are reached through [`crate::budget::Budget::tick`];
/// parser points through [`fail_point`]. The cross-crate chaos test arms
/// each of these in turn and asserts that (a) the fault fires and (b) no
/// public API panics.
pub const TRIGGER_POINTS: &[&str] = &[
    // picola-logic
    "espresso.iter",
    "exact.primes",
    "exact.node",
    "pla.parse",
    "mvpla.parse",
    // picola-logic: CDCL SAT core (ticked on every decision and every
    // conflict, so both satisfiable and unsatisfiable searches are
    // budget-responsive and chaos-reachable)
    "sat.conflict",
    // picola-fsm
    "kiss.parse",
    // picola-core
    "picola.column",
    "picola.refine",
    // picola-baselines
    "anneal.move",
    "nova.place",
    "nova.improve",
    "enc.eval",
    // picola-logic: shared global cache (shard treated as poisoned — the
    // lookup/insert is bypassed and the call degrades to an honest miss)
    "cache.shard",
    // picola-server: job lifecycle faults (worker panic mid-job, socket
    // dropped mid-response, admission control reporting a full queue).
    // These fire through `fail_point`/`should_fire` in the server crate,
    // not through Budget::tick; tests/server_lifecycle.rs sweeps them.
    "server.worker",
    "server.socket",
    "server.queue",
    // picola-core: content-addressed result store I/O (a lookup or an
    // atomic insert fails as if the disk did). A firing lookup degrades to
    // an honest counted miss and a firing insert is skipped — results are
    // recomputed, never invented. Swept in tests/server_lifecycle.rs and
    // the bench crate's store suite.
    "store.io",
];

struct Plan {
    point: &'static str,
    /// Hits remaining before the fault fires.
    countdown: Cell<u64>,
    /// Times the fault has fired.
    fired: Cell<u64>,
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static PLAN: RefCell<Option<Plan>> = const { RefCell::new(None) };
}

/// Process-wide plan for faults that must fire in worker threads the
/// arming test never sees (parallel portfolio members). Countdown and
/// fire count live under the mutex; the flag keeps the disarmed fast
/// path lock-free.
struct GlobalPlan {
    point: &'static str,
    countdown: u64,
    fired: u64,
}

static GLOBAL_ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL_PLAN: Mutex<Option<GlobalPlan>> = Mutex::new(None);

/// Disarms the active plan when dropped, so a panicking test cannot leak
/// chaos into the next test on the same thread (or, for global plans,
/// into other tests in the process).
#[must_use]
pub struct ChaosGuard {
    global: bool,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        if self.global {
            disarm_global();
        } else {
            disarm();
        }
    }
}

/// Arms a plan on this thread: after `after` further hits of `point`, every
/// subsequent hit fires the fault. `after = 0` fires on the first hit.
///
/// `point` must be one of [`TRIGGER_POINTS`] — arming a name that no code
/// path reports would silently test nothing, so unknown names panic (this
/// is a test-only API).
#[allow(clippy::panic)] // documented contract: test-only API, fails loudly
pub fn arm(point: &str, after: u64) -> ChaosGuard {
    let point = lookup_point(point);
    PLAN.with(|p| {
        *p.borrow_mut() = Some(Plan {
            point,
            countdown: Cell::new(after),
            fired: Cell::new(0),
        });
    });
    ARMED.with(|a| a.set(true));
    ChaosGuard { global: false }
}

/// Arms a **process-wide** plan: after `after` further hits of `point` on
/// *any* thread, every subsequent hit fires the fault. Use this to inject
/// faults into parallel portfolio workers the test thread never touches.
///
/// Only one global plan exists per process; tests arming one must
/// serialize among themselves (a shared `Mutex` in the test module is the
/// usual pattern). Unknown points panic, as with [`arm`].
pub fn arm_global(point: &str, after: u64) -> ChaosGuard {
    let point = lookup_point(point);
    if let Ok(mut plan) = GLOBAL_PLAN.lock() {
        *plan = Some(GlobalPlan {
            point,
            countdown: after,
            fired: 0,
        });
    }
    GLOBAL_ARMED.store(true, Ordering::Relaxed);
    ChaosGuard { global: true }
}

#[allow(clippy::panic)] // documented contract: test-only API, fails loudly
fn lookup_point(point: &str) -> &'static str {
    TRIGGER_POINTS
        .iter()
        .find(|&&p| p == point)
        .unwrap_or_else(|| panic!("chaos::arm: unknown trigger point {point:?}"))
}

/// Disarms any active plan on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(false));
    PLAN.with(|p| *p.borrow_mut() = None);
}

/// Disarms the process-wide plan, if any.
pub fn disarm_global() {
    GLOBAL_ARMED.store(false, Ordering::Relaxed);
    if let Ok(mut plan) = GLOBAL_PLAN.lock() {
        *plan = None;
    }
}

/// Times the thread-local armed plan has fired (0 when disarmed).
pub fn times_fired() -> u64 {
    PLAN.with(|p| p.borrow().as_ref().map_or(0, |plan| plan.fired.get()))
}

/// Times the process-wide plan has fired, summed over all threads
/// (0 when disarmed).
pub fn global_times_fired() -> u64 {
    GLOBAL_PLAN
        .lock()
        .ok()
        .and_then(|plan| plan.as_ref().map(|p| p.fired))
        .unwrap_or(0)
}

/// Reports reaching `point`; returns `true` when the armed plan says the
/// fault fires here. Called by [`crate::budget::Budget::tick`] and by the
/// parser fail points; the disarmed fast path is one flag read.
pub fn should_fire(point: &str) -> bool {
    if ARMED.with(|a| a.get()) && local_should_fire(point) {
        return true;
    }
    GLOBAL_ARMED.load(Ordering::Relaxed) && global_should_fire(point)
}

fn local_should_fire(point: &str) -> bool {
    PLAN.with(|p| {
        let plan = p.borrow();
        let Some(plan) = plan.as_ref() else {
            return false;
        };
        if plan.point != point {
            return false;
        }
        let remaining = plan.countdown.get();
        if remaining > 0 {
            plan.countdown.set(remaining - 1);
            false
        } else {
            plan.fired.set(plan.fired.get() + 1);
            true
        }
    })
}

fn global_should_fire(point: &str) -> bool {
    let Ok(mut guard) = GLOBAL_PLAN.lock() else {
        // A poisoned plan mutex means a test thread panicked mid-update;
        // fail safe by never firing rather than propagating the panic.
        return false;
    };
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    if plan.point != point {
        return false;
    }
    if plan.countdown > 0 {
        plan.countdown -= 1;
        false
    } else {
        plan.fired += 1;
        true
    }
}

/// Parser-side fail point: `Some(message)` when an armed plan fires at
/// `point`, to be surfaced as a parse error.
pub fn fail_point(point: &str) -> Option<String> {
    if should_fire(point) {
        Some(format!("injected fault at {point}"))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_fires() {
        disarm();
        assert!(!should_fire("espresso.iter"));
        assert_eq!(times_fired(), 0);
        assert!(fail_point("pla.parse").is_none());
    }

    #[test]
    fn fires_after_countdown_and_keeps_firing() {
        let _guard = arm("exact.node", 2);
        assert!(!should_fire("exact.node"));
        assert!(!should_fire("exact.node"));
        assert!(should_fire("exact.node"));
        assert!(should_fire("exact.node"), "keeps firing once triggered");
        assert_eq!(times_fired(), 2);
    }

    #[test]
    fn other_points_are_unaffected() {
        let _guard = arm("exact.node", 0);
        assert!(!should_fire("espresso.iter"));
        assert!(should_fire("exact.node"));
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _guard = arm("kiss.parse", 0);
            assert!(fail_point("kiss.parse").is_some());
        }
        assert!(fail_point("kiss.parse").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown trigger point")]
    fn unknown_points_are_rejected() {
        let _ = arm("no.such.point", 0);
    }

    #[test]
    fn global_plans_fire_on_other_threads() {
        // Uses a trigger point no other test in this crate reaches, so
        // running in parallel with the thread-local tests is safe.
        {
            let _guard = arm_global("anneal.move", 1);
            let fired_elsewhere = std::thread::spawn(|| {
                let first = should_fire("anneal.move"); // consumes countdown
                let second = should_fire("anneal.move");
                (first, second)
            })
            .join()
            .unwrap_or((true, false));
            assert_eq!(fired_elsewhere, (false, true));
            assert!(should_fire("anneal.move"), "keeps firing on any thread");
            assert_eq!(global_times_fired(), 2);
            assert_eq!(times_fired(), 0, "thread-local plan stays empty");
        }
        assert!(!should_fire("anneal.move"), "guard disarms the global plan");
        assert_eq!(global_times_fired(), 0);
    }
}
