//! Covers: sets of cubes representing a sum-of-products.

use crate::cube::Cube;
use crate::domain::Domain;
use std::fmt;

/// A sum-of-products form: an unordered collection of [`Cube`]s over one
/// [`Domain`].
///
/// Invariants: every contained cube is valid (non-empty) and the trailing
/// bits beyond the domain are zero. Duplicate or contained cubes *may* be
/// present transiently; [`Cover::scc`] removes them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    dom: Domain,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0).
    pub fn empty(dom: &Domain) -> Self {
        Cover {
            dom: dom.clone(),
            cubes: Vec::new(),
        }
    }

    /// The universal cover (constant 1): a single full cube.
    pub fn universe(dom: &Domain) -> Self {
        Cover {
            dom: dom.clone(),
            cubes: vec![Cube::full(dom)],
        }
    }

    /// Builds a cover from cubes, dropping invalid (empty) ones.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(dom: &Domain, cubes: I) -> Self {
        let cubes = cubes
            .into_iter()
            .filter(|c| c.is_valid(dom))
            .collect();
        Cover {
            dom: dom.clone(),
            cubes,
        }
    }

    /// Parses a cover over a purely binary domain from whitespace-separated
    /// cube strings like `"10- 0-1"`.
    ///
    /// # Panics
    ///
    /// Panics if a cube string's length differs from the number of variables
    /// or contains characters other than `0`, `1`, `-`. Intended for tests
    /// and examples; use [`crate::pla`] for fallible parsing.
    // Documented panicking convenience for tests/examples; `crate::pla`
    // is the fallible path for untrusted input.
    #[allow(clippy::panic)]
    pub fn parse(dom: &Domain, text: &str) -> Self {
        let mut cubes = Vec::new();
        for tok in text.split_whitespace() {
            assert_eq!(
                tok.len(),
                dom.num_vars(),
                "cube {tok:?} does not match domain with {} vars",
                dom.num_vars()
            );
            let mut c = Cube::full(dom);
            for (i, ch) in tok.chars().enumerate() {
                match ch {
                    '0' => c.restrict_binary(dom, i, false),
                    '1' => c.restrict_binary(dom, i, true),
                    '-' => {}
                    _ => panic!("bad literal {ch:?} in cube {tok:?}"),
                }
            }
            cubes.push(c);
        }
        Cover::from_cubes(dom, cubes)
    }

    /// The cover's domain.
    pub fn domain(&self) -> &Domain {
        &self.dom
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Adds a cube if it is valid.
    pub fn push(&mut self, c: Cube) {
        if c.is_valid(&self.dom) {
            self.cubes.push(c);
        }
    }

    /// Removes the cube at `i`, returning it.
    pub fn remove(&mut self, i: usize) -> Cube {
        self.cubes.swap_remove(i)
    }

    /// Appends all cubes of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn extend_with(&mut self, other: &Cover) {
        assert_eq!(self.dom, other.dom, "cover domain mismatch");
        self.cubes.extend(other.cubes.iter().cloned());
    }

    /// Union of two covers.
    pub fn union(&self, other: &Cover) -> Cover {
        let mut out = self.clone();
        out.extend_with(other);
        out
    }

    /// Total number of admitted parts over all cubes — ESPRESSO's secondary
    /// cost measure (fewer parts set = more literals = worse; NB in
    /// positional notation a *larger* part count means *fewer* literals, so
    /// for cost comparisons use [`Cover::literal_cost`]).
    pub fn part_count(&self) -> usize {
        self.cubes.iter().map(|c| c.part_count()).sum()
    }

    /// Number of non-full literals summed over cubes: the usual two-level
    /// literal count used as a tie-breaking cost.
    pub fn literal_cost(&self) -> usize {
        self.cubes
            .iter()
            .map(|c| {
                (0..self.dom.num_vars())
                    .filter(|&v| !c.var_is_full(&self.dom, v))
                    .count()
            })
            .sum()
    }

    /// Single-cube containment: removes every cube contained in another cube
    /// of the cover (and exact duplicates).
    pub fn scc(&mut self) {
        // Sort by descending part count so containers precede containees.
        self.cubes
            .sort_by_key(|c| std::cmp::Reverse(c.part_count()));
        // Word-fold signature prefilter: per-word containment implies
        // containment of the OR-fold of the words, so any containee bit
        // outside a candidate container's fold rejects that pair without
        // the full word sweep. Exact for single-word domains (≤ 64 parts).
        let fold = |c: &Cube| c.words().iter().fold(0u64, |acc, &w| acc | w);
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        let mut kept_sigs: Vec<u64> = Vec::with_capacity(self.cubes.len());
        let mut pairs = 0u64;
        let mut prefilter_rejects = 0u64;
        'outer: for c in self.cubes.drain(..) {
            let sig = fold(&c);
            for (k, &ksig) in kept.iter().zip(&kept_sigs) {
                pairs += 1;
                if sig & !ksig != 0 {
                    prefilter_rejects += 1;
                    continue;
                }
                if k.covers(&c) {
                    continue 'outer;
                }
            }
            kept.push(c);
            kept_sigs.push(sig);
        }
        self.cubes = kept;
        crate::obs::count(crate::obs::Counter::SccPairs, pairs);
        crate::obs::count(crate::obs::Counter::SccPrefilterRejects, prefilter_rejects);
    }

    /// The cofactor of the cover with respect to cube `p`: cubes disjoint
    /// from `p` drop out, the rest are cofactored.
    pub fn cofactor(&self, p: &Cube) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor(p, &self.dom))
            .collect();
        Cover {
            dom: self.dom.clone(),
            cubes,
        }
    }

    /// The supercube of all cubes, or `None` for an empty cover.
    pub fn supercube(&self) -> Option<Cube> {
        let mut it = self.cubes.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, c| acc.or(c)))
    }

    /// Whether any cube is the universal cube.
    pub fn has_full_cube(&self) -> bool {
        self.cubes.iter().any(|c| c.is_full(&self.dom))
    }

    /// Whether the given minterm (one value per input variable, plus an
    /// output part if the domain has outputs) is covered.
    ///
    /// `point` gives, for each variable in order, the chosen part offset.
    pub fn covers_point(&self, point: &[usize]) -> bool {
        debug_assert_eq!(point.len(), self.dom.num_vars());
        self.cubes.iter().any(|c| {
            point
                .iter()
                .enumerate()
                .all(|(v, &val)| c.has_part(self.dom.var(v).offset() + val))
        })
    }

    /// Enumerates all points of the full variable space (inputs × outputs) as
    /// part-offset vectors. Exponential; intended for small test domains.
    pub fn enumerate_points(dom: &Domain) -> Vec<Vec<usize>> {
        let sizes: Vec<usize> = (0..dom.num_vars()).map(|v| dom.var(v).parts()).collect();
        let mut points = vec![vec![]];
        for &s in &sizes {
            let mut next = Vec::with_capacity(points.len() * s);
            for p in &points {
                for val in 0..s {
                    let mut q = p.clone();
                    q.push(val);
                    next.push(q);
                }
            }
            points = next;
        }
        points
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "(empty cover)");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", c.render(&self.dom))?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Cover {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "10- 0-1");
        assert_eq!(f.len(), 2);
        let text = format!("{f}");
        assert!(text.contains("1 0 -"));
    }

    #[test]
    fn scc_removes_contained_and_duplicate_cubes() {
        let dom = Domain::binary(3);
        let mut f = Cover::parse(&dom, "1-- 10- 10- 0-1");
        f.scc();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn cofactor_drops_disjoint_cubes() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "1- 01");
        let mut p = Cube::full(&dom);
        p.restrict_binary(&dom, 0, true);
        let cf = f.cofactor(&p);
        assert_eq!(cf.len(), 1);
        assert!(cf.cubes()[0].is_full(&dom));
    }

    #[test]
    fn covers_point_checks_membership() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "1-");
        // parts: var0 value 1 => offset 1; var1 value 0 => offset 0
        assert!(f.covers_point(&[1, 0]));
        assert!(f.covers_point(&[1, 1]));
        assert!(!f.covers_point(&[0, 0]));
    }

    #[test]
    fn enumerate_points_covers_space() {
        let dom = Domain::binary(3);
        assert_eq!(Cover::enumerate_points(&dom).len(), 8);
    }

    #[test]
    fn supercube_of_cover() {
        let dom = Domain::binary(2);
        let f = Cover::parse(&dom, "10 01");
        let s = f.supercube().unwrap();
        assert!(s.is_full(&dom));
        assert!(Cover::empty(&dom).supercube().is_none());
    }

    #[test]
    fn invalid_cubes_are_rejected_on_push() {
        let dom = Domain::binary(1);
        let mut f = Cover::empty(&dom);
        let a = Cover::parse(&dom, "1").cubes()[0].clone();
        let b = Cover::parse(&dom, "0").cubes()[0].clone();
        f.push(a.and(&b)); // empty intersection
        assert!(f.is_empty());
    }

    #[test]
    fn literal_cost_counts_bound_vars() {
        let dom = Domain::binary(3);
        let f = Cover::parse(&dom, "10- 111");
        assert_eq!(f.literal_cost(), 2 + 3);
    }
}
