//! The ESPRESSO heuristic two-level minimization loop.

use crate::budget::{Budget, Completion};
use crate::cover::Cover;
use crate::obs;
use crate::equiv::implements;
use crate::essential::essentials;
use crate::expand::expand;
use crate::irredundant::irredundant;
use crate::reduce::reduce;
use crate::urp::complement;

/// Tuning knobs for [`espresso_with`].
#[derive(Debug, Clone)]
pub struct MinimizeOptions {
    /// Upper bound on REDUCE/EXPAND/IRREDUNDANT iterations.
    pub max_iterations: usize,
    /// Extract essential primes once after the first EXPAND/IRREDUNDANT and
    /// treat them as don't-cares inside the loop (ESPRESSO's default).
    pub use_essentials: bool,
    /// Attempt LAST_GASP (maximal individual reduction + expansion) when
    /// the main loop stalls, re-entering the loop on success.
    pub use_last_gasp: bool,
    /// Verify (debug builds only) after every step that the cover still
    /// implements the function.
    pub check_invariants: bool,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions {
            max_iterations: 12,
            use_essentials: true,
            use_last_gasp: true,
            check_invariants: cfg!(debug_assertions),
        }
    }
}

/// The cost espresso drives down: primarily the number of cubes, then the
/// literal count as tie-breaker.
fn cost(f: &Cover) -> (usize, usize) {
    (f.len(), f.literal_cost())
}

/// Minimizes the incompletely specified function with on-set `on` and
/// don't-care set `dc` using default options. See [`espresso_with`].
///
/// # Examples
///
/// ```
/// use picola_logic::{espresso, Cover, Domain};
///
/// let dom = Domain::binary(3);
/// let on = Cover::parse(&dom, "110 111 011");
/// let min = espresso(&on, &Cover::empty(&dom));
/// assert_eq!(min.len(), 2); // 11- and -11
/// ```
pub fn espresso(on: &Cover, dc: &Cover) -> Cover {
    espresso_with(on, dc, &MinimizeOptions::default())
}

/// Minimizes `(on, dc)` with explicit options: EXPAND against the computed
/// off-set, IRREDUNDANT, one essential-prime extraction, then the
/// REDUCE → EXPAND → IRREDUNDANT loop until the cost stops improving.
///
/// The result is a prime, irredundant cover `f` with
/// `on ⊆ f ⊆ on ∪ dc` (verified by debug assertions when
/// `check_invariants` is set).
pub fn espresso_with(on: &Cover, dc: &Cover, opts: &MinimizeOptions) -> Cover {
    espresso_bounded(on, dc, opts, &Budget::unlimited()).0
}

/// Budget-aware [`espresso_with`]: polls `budget` once per main-loop
/// iteration (trigger point `"espresso.iter"`) and stops refining when it
/// runs out, returning the best cover found so far.
///
/// The returned cover always implements `(on, dc)` — even under immediate
/// exhaustion the on-set itself (made single-cube-containment-free) is
/// returned — so degradation costs quality, never correctness. The second
/// component is [`Budget::completion`] as of return.
pub fn espresso_bounded(
    on: &Cover,
    dc: &Cover,
    opts: &MinimizeOptions,
    budget: &Budget,
) -> (Cover, Completion) {
    let dom = on.domain();
    assert_eq!(dom, dc.domain(), "espresso: domain mismatch");
    let span = obs::current_or(budget.recorder()).span("espresso");
    let _cur = obs::enter(span.recorder());
    if on.is_empty() {
        return (Cover::empty(dom), budget.completion());
    }
    // The off-set complement below can itself be expensive, so honor a
    // budget that is already exhausted (or exhausts at entry) before it.
    // The degraded result keeps the scc pass (cheap, and callers' cube
    // counts under exhaustion stay comparable across releases).
    if !budget.tick("espresso.iter", 1) {
        let mut f = on.clone();
        f.scc();
        return (f, budget.completion());
    }
    let off = complement(&on.union(dc));
    if off.is_empty() {
        return (Cover::universe(dom), budget.completion());
    }

    let mut f = on.clone();
    f.scc();
    obs::count(obs::Counter::ExpandCalls, 1);
    f = expand(&f, &off);
    obs::count(obs::Counter::IrredundantCalls, 1);
    f = irredundant(&f, dc);
    if opts.check_invariants {
        debug_assert!(implements(&f, on, dc), "espresso: invariant lost after first pass");
    }

    // Essential primes never leave the cover; move them into the dc-set so
    // the loop optimizes only the remainder.
    let (ess, mut dc_aug) = if opts.use_essentials {
        let e = essentials(&f, dc);
        let remaining = Cover::from_cubes(
            dom,
            f.iter()
                .filter(|c| !e.iter().any(|x| x == *c))
                .cloned(),
        );
        f = remaining;
        (e.clone(), dc.union(&e))
    } else {
        (Cover::empty(dom), dc.clone())
    };
    dc_aug.scc();

    let mut best = cost(&f);
    let mut iterations = 0;
    'outer: loop {
        while iterations < opts.max_iterations {
            if !budget.tick("espresso.iter", 1) {
                break 'outer;
            }
            iterations += 1;
            obs::count(obs::Counter::EspressoIters, 1);
            if f.is_empty() {
                break 'outer;
            }
            obs::count(obs::Counter::ReduceCalls, 1);
            let reduced = reduce(&f, &dc_aug);
            obs::count(obs::Counter::ExpandCalls, 1);
            let expanded = expand(&reduced, &off);
            obs::count(obs::Counter::IrredundantCalls, 1);
            let candidate = irredundant(&expanded, &dc_aug);
            let c = cost(&candidate);
            if c < best {
                best = c;
                f = candidate;
            } else {
                break;
            }
        }
        if !opts.use_last_gasp || iterations >= opts.max_iterations || budget.is_exhausted() {
            break;
        }
        match crate::gasp::last_gasp(&f, &dc_aug, &off) {
            Some(better) => {
                best = cost(&better);
                f = better;
            }
            None => break,
        }
    }

    f.extend_with(&ess);
    f.scc();
    if opts.check_invariants {
        debug_assert!(implements(&f, on, dc), "espresso: result does not implement function");
    }
    (f, budget.completion())
}

/// Convenience wrapper returning only the minimized cube count — the cost
/// measure used throughout the PICOLA evaluation. Runs the default (flat)
/// engine once with a one-shot scratch, bypassing the memo and its
/// counters; long-lived callers should hold a
/// [`crate::cache::MinimizeCache`] so repeat covers hit the memo.
pub fn minimized_cube_count(on: &Cover, dc: &Cover) -> usize {
    let mut scratch = crate::flat::MinimizeScratch::new();
    crate::cache::minimize_count(on, dc, crate::cache::CoverEngine::default(), &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, DomainBuilder};
    use crate::cube::Cube;

    #[test]
    fn minimizes_classic_examples() {
        let dom = Domain::binary(3);
        // full cover of a tautology collapses to one cube
        let on = Cover::parse(&dom, "000 001 010 011 100 101 110 111");
        assert_eq!(espresso(&on, &Cover::empty(&dom)).len(), 1);
    }

    #[test]
    fn xor_stays_two_cubes() {
        let dom = Domain::binary(2);
        let on = Cover::parse(&dom, "10 01");
        assert_eq!(espresso(&on, &Cover::empty(&dom)).len(), 2);
    }

    #[test]
    fn uses_dont_cares_to_merge() {
        let dom = Domain::binary(3);
        // on = {111, 100}, dc = {110, 101}: minimises to single cube 1--
        let on = Cover::parse(&dom, "111 100");
        let dc = Cover::parse(&dom, "110 101");
        let m = espresso(&on, &dc);
        assert_eq!(m.len(), 1);
        assert_eq!(m.cubes()[0].render(&dom), "1 - -");
    }

    #[test]
    fn result_implements_function() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "1100 0110 0011 1001 1111");
        let dc = Cover::parse(&dom, "0000");
        let m = espresso(&on, &dc);
        assert!(implements(&m, &on, &dc));
    }

    #[test]
    fn multivalued_minimization() {
        // f(s, x) over a 4-valued s: on-set = (s ∈ {0,1}) x + (s ∈ {2,3}) x
        // which is simply x.
        let dom = DomainBuilder::new().multi("s", 4).binary("x").build();
        let mut a = Cube::full(&dom);
        a.clear_part(2);
        a.clear_part(3);
        a.restrict_binary(&dom, 1, true);
        let mut b = Cube::full(&dom);
        b.clear_part(0);
        b.clear_part(1);
        b.restrict_binary(&dom, 1, true);
        let on = Cover::from_cubes(&dom, [a, b]);
        let m = espresso(&on, &Cover::empty(&dom));
        assert_eq!(m.len(), 1);
        assert!(m.cubes()[0].var_is_full(&dom, 0));
    }

    #[test]
    fn empty_and_universal_functions() {
        let dom = Domain::binary(2);
        assert!(espresso(&Cover::empty(&dom), &Cover::empty(&dom)).is_empty());
        let all = Cover::parse(&dom, "00 01 10 11");
        let m = espresso(&all, &Cover::empty(&dom));
        assert!(m.has_full_cube());
    }

    #[test]
    fn exhausted_budget_still_implements_function() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "1100 0110 0011 1001 1111 0101");
        let dc = Cover::parse(&dom, "0000");
        // Work limit 0: exhausts on the entry tick, before any refinement.
        let budget = crate::budget::Budget::with_work_limit(0);
        let (f, completion) = espresso_bounded(&on, &dc, &MinimizeOptions::default(), &budget);
        assert!(!completion.is_complete());
        assert!(implements(&f, &on, &dc));
    }

    #[test]
    fn tight_budget_degrades_mid_loop() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "1100 0110 0011 1001 1111 0101");
        let dc = Cover::empty(&dom);
        // Allows the entry tick plus one loop iteration.
        let budget = crate::budget::Budget::with_work_limit(2);
        let (f, completion) = espresso_bounded(&on, &dc, &MinimizeOptions::default(), &budget);
        assert!(implements(&f, &on, &dc));
        // Either the loop converged within budget or it degraded; both are
        // acceptable, but the cover must be valid regardless.
        let _ = completion;
    }

    #[test]
    fn unlimited_budget_matches_unbounded_result() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let budget = crate::budget::Budget::unlimited();
        let (f, completion) =
            espresso_bounded(&on, &Cover::empty(&dom), &MinimizeOptions::default(), &budget);
        assert!(completion.is_complete());
        assert_eq!(f.len(), espresso(&on, &Cover::empty(&dom)).len());
    }

    #[test]
    fn no_essentials_option_still_valid() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011 001");
        let opts = MinimizeOptions {
            use_essentials: false,
            ..MinimizeOptions::default()
        };
        let m = espresso_with(&on, &Cover::empty(&dom), &opts);
        assert!(implements(&m, &on, &Cover::empty(&dom)));
        assert!(m.len() <= on.len());
    }
}
