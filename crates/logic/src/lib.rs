//! # picola-logic — two-level / multi-valued logic substrate
//!
//! The logic foundation of the PICOLA reproduction: positional-notation
//! cubes and covers over mixed binary/multi-valued domains, the unate
//! recursive paradigm (tautology, complement), an ESPRESSO-style heuristic
//! minimizer (EXPAND / IRREDUNDANT / REDUCE / essential primes), an exact
//! Quine–McCluskey-style minimizer for small functions, and PLA I/O.
//!
//! Multi-output functions are represented the classic way: the output field
//! is one extra multi-valued variable (see [`DomainBuilder::output`]), which
//! lets every algorithm treat multiple-output minimization uniformly.
//!
//! ## Quick start
//!
//! ```
//! use picola_logic::{espresso, Cover, Domain};
//!
//! let dom = Domain::binary(3);
//! let on = Cover::parse(&dom, "110 111 011");
//! let dc = Cover::empty(&dom);
//! let minimized = espresso(&on, &dc);
//! assert_eq!(minimized.len(), 2); // 11- and -11
//! ```
//!
//! ## Module map
//!
//! - [`domain`] / [`cube`] / [`cover`]: the cube algebra.
//! - [`urp`]: tautology and complementation.
//! - [`mod@expand`] / [`mod@irredundant`] / [`mod@reduce`] / [`essential`]: the ESPRESSO
//!   operators; [`espresso`](crate::espresso()) drives them.
//! - [`primes`] / [`exact`]: exact prime generation and covering.
//! - [`equiv`]: containment/equivalence checks.
//! - [`pla`]: Berkeley PLA text format.
//! - [`budget`] / [`chaos`]: execution budgets with graceful degradation and
//!   the deterministic fault-injection harness that tests them.
//! - [`obs`]: deterministic spans + counters (compiled out without the
//!   `obs` cargo feature).
//! - [`flat`]: allocation-free flat cover kernels and the flat ESPRESSO
//!   engine ([`flat_espresso_bounded`]) covering every domain via a
//!   1/2/4-word specialization ladder over the cube stride.
//! - [`simd`]: the runtime-dispatched kernel backend beneath the flat
//!   engine — AVX2 / portable-wide / scalar word kernels selected by
//!   [`KernelBackend`] (`PICOLA_SIMD`, `simd` cargo feature), bit-identical
//!   across backends, plus the 64-byte-aligned [`AlignedWords`] buffers.
//! - [`cache`]: the memoized minimization cache ([`MinimizeCache`]; memo
//!   compiled out without the `minimize-cache` cargo feature) and the
//!   [`CoverEngine`] selector.
//! - [`sat`]: CNF formulas, DIMACS I/O, a self-contained CDCL solver, and
//!   the face-problem compiler behind the `picola-sat` exact oracle.
//! - [`binio`]: compact binary serialization primitives (varints,
//!   bounds-checked readers, versioned headers, FNV-1a digests) beneath
//!   the persistent artifact codecs and the content-addressed result
//!   store (DESIGN.md §18).

#![warn(missing_docs)]

pub mod binio;
pub mod bitset;
pub mod budget;
pub mod cache;
pub mod chaos;
pub mod cover;
pub mod cube;
pub mod domain;
pub mod equiv;
pub mod error;
pub mod espresso;
pub mod essential;
pub mod exact;
pub mod expand;
pub mod flat;
pub mod gasp;
pub mod irredundant;
pub mod measure;
pub mod mv_pla;
pub mod obs;
pub mod pla;
pub mod primes;
pub mod reduce;
pub mod sat;
pub mod sharp;
pub mod simd;
pub mod urp;
pub mod verify;

pub use binio::{fnv1a64, BinioError, ByteReader, ByteWriter, Fnv64};
pub use bitset::WordSet;
pub use budget::{Budget, Completion, ExhaustReason};
pub use cache::{
    CacheStats, CoverEngine, GlobalMinimizeCache, MinimizeCache, DEFAULT_CACHE_CAPACITY,
    DEFAULT_CACHE_SHARDS,
};
pub use cover::Cover;
pub use cube::Cube;
pub use domain::{Domain, DomainBuilder, Var, VarKind};
pub use equiv::{cover_contains, cover_covers_cube, equivalent, implements};
pub use error::{ParseLimits, ParsePlaError};
pub use espresso::{
    espresso, espresso_bounded, espresso_with, minimized_cube_count, MinimizeOptions,
};
pub use essential::essentials;
pub use exact::{exact_minimize, exact_minimize_bounded, ExactOutcome};
pub use expand::expand;
pub use flat::{
    cube_and_into, cube_cofactor_into, cube_consensus_into, cube_contains, cube_distance,
    cube_is_valid, flat_eligible, flat_espresso, flat_espresso_bounded, flat_espresso_with,
    FlatCover, FlatDomain, MinimizeScratch,
};
pub use gasp::last_gasp;
pub use irredundant::irredundant;
pub use measure::{cover_density, cover_minterms, cube_minterms};
pub use mv_pla::{parse_mv_pla, parse_mv_pla_with, write_mv_pla};
pub use obs::{Counter, Recorder, SpanSnapshot, Trace};
pub use pla::{parse_pla, parse_pla_with, write_pla, Pla, PlaType};
pub use primes::{all_primes, all_primes_bounded};
pub use reduce::reduce;
pub use sat::{Cnf, FaceCnf, FaceProblem, Lit, SatOutcome, SatParseError, SatStats, Solver};
pub use sharp::{cover_sharp, cube_sharp};
pub use simd::{
    avx2_active, selected_backend, set_backend_override, AlignedWords, KernelBackend,
};
pub use urp::{complement, cube_complement, tautology};
pub use verify::{
    find_point_in_difference, first_point_of, verify_equivalent, verify_implements, Point,
    Verdict,
};
