//! SAT substrate: CNF formulas, DIMACS I/O, a self-contained CDCL solver,
//! and a compiler from face-constrained encoding problems to CNF.
//!
//! This module gives the workspace an *independent* exact path: instead of
//! sharing cube algebra with the minimizers it is meant to check, it
//! reduces "is there an injective encoding whose constraint covers total at
//! most `bound` cubes?" to propositional satisfiability and decides it with
//! a small conflict-driven solver (two-literal watching, first-UIP clause
//! learning, phase saving, geometric restarts). No external solver is
//! involved, consistent with the vendored-dependencies policy.
//!
//! ## The reduction
//!
//! For a [`FaceProblem`] over `n` symbols in `nv` bits with constraint
//! groups `g_0..g_{m-1}`, [`FaceProblem::compile`] emits:
//!
//! - **code bits** `x[s][b]` — bit `b` of the vertex assigned to symbol
//!   `s`, with pairwise-difference auxiliaries enforcing injectivity;
//! - **cube slots** per group — each slot `j` has a selector `sel`, and
//!   per-bit `free`/`val` literals describing one cube of the group's
//!   cover; auxiliaries force every member's code inside some selected
//!   cube and every *non-member's* code outside every selected cube
//!   (unassigned vertices are don't-cares, exactly the Table I cost
//!   semantics);
//! - a **sequential-counter at-most-k** constraint (Sinz's LTSeq encoding,
//!   per "Yet Another Comparison of SAT Encodings for the At-Most-K
//!   Constraint") bounding the total number of selected cubes;
//! - **symmetry breaking**: hypercube automorphisms (bit complementation
//!   and bit permutation) act freely on solutions, so symbol 0 is pinned
//!   to the origin and symbol 1's bits are sorted; selected cube slots
//!   form a prefix within each group.
//!
//! The formula is satisfiable at bound `K` iff some injective encoding
//! admits per-group SOP covers totalling at most `K` cubes — i.e. iff the
//! exact Table I cost can be `<= K`. Iterating `K` downward to UNSAT
//! proves optima; `picola-sat` wraps that loop in an `ExactOracle`.
//!
//! ## Budgets and chaos
//!
//! [`Solver::solve`] charges one unit of work at the `sat.conflict`
//! trigger point for every branching decision and every conflict, so
//! exhaustion (or an injected fault) surfaces as [`SatOutcome::Unknown`]
//! promptly — the solver never hangs and never panics.

use crate::budget::Budget;
use crate::obs;
use std::fmt;
use std::fmt::Write as _;

/// The budget trigger point charged on every solver decision and conflict.
pub const SAT_TICK: &str = "sat.conflict";

/// Parse limit: maximum variable index accepted from DIMACS input.
const MAX_DIMACS_VARS: usize = 1 << 20;
/// Parse limit: maximum total literal count accepted from DIMACS input.
const MAX_DIMACS_LITS: usize = 1 << 23;

/// A propositional literal: variable index plus polarity, packed as
/// `var << 1 | negated`.
///
/// The packed order (variable-major, positive before negative) is also the
/// normalization order used by [`Cnf::add_clause`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of variable `var`.
    #[must_use]
    pub fn pos(var: usize) -> Lit {
        Lit((var as u32) << 1)
    }

    /// The negative literal of variable `var`.
    #[must_use]
    pub fn neg(var: usize) -> Lit {
        Lit(((var as u32) << 1) | 1)
    }

    /// The variable this literal mentions.
    #[must_use]
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` for a positive literal.
    #[must_use]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The opposite-polarity literal of the same variable.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists (`2 * var + negated`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The DIMACS spelling: 1-based variable, sign for polarity.
    #[must_use]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var() as i64 + 1;
        if self.is_pos() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (`None` for 0 or an out-of-range value).
    #[must_use]
    pub fn from_dimacs(x: i64) -> Option<Lit> {
        let v = x.unsigned_abs();
        if x == 0 || v > MAX_DIMACS_VARS as u64 {
            return None;
        }
        let var = (v - 1) as usize;
        Some(if x > 0 { Lit::pos(var) } else { Lit::neg(var) })
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Error from [`Cnf::parse_dimacs`]: offending line plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatParseError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SatParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SatParseError {}

/// A CNF formula: a clause list over `num_vars` variables.
///
/// Clauses are normalized on insertion (sorted, duplicate literals
/// dropped, tautological clauses discarded), so two formulas built from
/// logically identical clause sets compare equal — the property the
/// DIMACS round-trip fuzzer leans on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula over zero variables.
    #[must_use]
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> usize {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Number of variables (highest mentioned index + 1).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The normalized clause list.
    #[must_use]
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds a clause (empty allowed: it makes the formula unsatisfiable).
    ///
    /// The clause is normalized: literals sorted and deduplicated, and a
    /// tautology (`x OR NOT x`) is silently dropped. Variables beyond the
    /// current count grow the formula.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        let mut c = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // After sorting by packed code, the two polarities of a variable
        // are adjacent — a tautological clause is always satisfied and
        // would only slow the solver down.
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        if let Some(last) = c.last() {
            if last.var() >= self.num_vars {
                self.num_vars = last.var() + 1;
            }
        }
        self.clauses.push(c);
    }

    /// Constrains at most `k` of `lits` to be true, using Sinz's
    /// sequential-counter (LTSeq) encoding: `O(n*k)` auxiliary variables
    /// and clauses, with full arc consistency under unit propagation.
    pub fn add_at_most_k(&mut self, lits: &[Lit], k: usize) {
        let n = lits.len();
        if k >= n {
            return;
        }
        if k == 0 {
            for &l in lits {
                self.add_clause(&[l.negated()]);
            }
            return;
        }
        // s[i][j]: "at least j+1 of lits[0..=i] are true" (i < n-1).
        let s: Vec<Vec<usize>> = (0..n - 1)
            .map(|_| (0..k).map(|_| self.new_var()).collect())
            .collect();
        self.add_clause(&[lits[0].negated(), Lit::pos(s[0][0])]);
        for &sj in s[0].iter().skip(1) {
            self.add_clause(&[Lit::neg(sj)]);
        }
        for i in 1..n - 1 {
            self.add_clause(&[lits[i].negated(), Lit::pos(s[i][0])]);
            self.add_clause(&[Lit::neg(s[i - 1][0]), Lit::pos(s[i][0])]);
            for j in 1..k {
                self.add_clause(&[
                    lits[i].negated(),
                    Lit::neg(s[i - 1][j - 1]),
                    Lit::pos(s[i][j]),
                ]);
                self.add_clause(&[Lit::neg(s[i - 1][j]), Lit::pos(s[i][j])]);
            }
            self.add_clause(&[lits[i].negated(), Lit::neg(s[i - 1][k - 1])]);
        }
        self.add_clause(&[lits[n - 1].negated(), Lit::neg(s[n - 2][k - 1])]);
    }

    /// Renders the formula in DIMACS CNF format.
    #[must_use]
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses DIMACS CNF text. Comment lines (`c ...`) and the problem
    /// line (`p cnf V C`) are accepted anywhere before the clauses they
    /// describe; clause literal lists may span lines and are terminated
    /// by `0`. Oversized inputs (more than 2^20 variables or 2^23
    /// literals) are rejected rather than allocated.
    pub fn parse_dimacs(text: &str) -> Result<Cnf, SatParseError> {
        let mut cnf = Cnf::new();
        let mut declared_vars: Option<usize> = None;
        let mut current: Vec<Lit> = Vec::new();
        let mut total_lits = 0usize;
        let mut last_line = 0usize;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            last_line = lineno;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(SatParseError {
                        line: lineno,
                        message: "problem line is not 'p cnf V C'".into(),
                    });
                }
                let nv: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| SatParseError {
                        line: lineno,
                        message: "missing or invalid variable count".into(),
                    })?;
                if nv > MAX_DIMACS_VARS {
                    return Err(SatParseError {
                        line: lineno,
                        message: format!("variable count {nv} exceeds the parse limit"),
                    });
                }
                declared_vars = Some(nv);
                continue;
            }
            for tok in line.split_whitespace() {
                let x: i64 = tok.parse().map_err(|_| SatParseError {
                    line: lineno,
                    message: format!("invalid literal token {tok:?}"),
                })?;
                if x == 0 {
                    cnf.add_clause(&current);
                    current.clear();
                    continue;
                }
                let lit = Lit::from_dimacs(x).ok_or_else(|| SatParseError {
                    line: lineno,
                    message: format!("literal {x} outside the accepted range"),
                })?;
                total_lits += 1;
                if total_lits > MAX_DIMACS_LITS {
                    return Err(SatParseError {
                        line: lineno,
                        message: "literal count exceeds the parse limit".into(),
                    });
                }
                current.push(lit);
            }
        }
        if !current.is_empty() {
            return Err(SatParseError {
                line: last_line,
                message: "unterminated clause (missing trailing 0)".into(),
            });
        }
        if let Some(nv) = declared_vars {
            if nv > cnf.num_vars {
                cnf.num_vars = nv;
            }
        }
        Ok(cnf)
    }
}

/// Monotonic counters reported by [`Solver::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Branching decisions made.
    pub decisions: u64,
    /// Implied assignments produced by unit propagation.
    pub propagations: u64,
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Clauses learned (conflicts whose first-UIP clause was recorded).
    pub learned: u64,
    /// Search restarts.
    pub restarts: u64,
}

impl SatStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: SatStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.learned += other.learned;
        self.restarts += other.restarts;
    }
}

/// The result of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// Undecided: the budget ran out (or a chaos fault fired), or the
    /// solver's own conflict limit was reached.
    Unknown,
}

impl SatOutcome {
    /// `true` for [`SatOutcome::Sat`].
    #[must_use]
    pub fn is_sat(&self) -> bool {
        matches!(self, SatOutcome::Sat(_))
    }

    /// The model, when satisfiable.
    #[must_use]
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatOutcome::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A conflict-driven clause-learning SAT solver.
///
/// Deliberately small but honest CDCL: two-literal watches, first-UIP
/// learning, VSIDS-style variable activities, phase saving, and geometric
/// restarts. Deterministic — no randomization, no wall-clock reads — so
/// identical inputs give identical searches at any thread count.
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>,
    /// Per-variable assignment: 0 unknown, 1 true, -1 false.
    assign: Vec<i8>,
    level: Vec<u32>,
    /// Reason clause index, or -1 for decisions / unit enqueues.
    reason: Vec<i32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    seen: Vec<bool>,
    analyze_scratch: Vec<Lit>,
    /// Binary max-heap of candidate branch variables ordered by activity
    /// (ties break toward the lower index), with per-variable positions
    /// for decrease-key. Assigned variables are removed lazily on pop.
    order_heap: Vec<u32>,
    order_pos: Vec<i32>,
    stats: SatStats,
    conflict_limit: Option<u64>,
    root_conflict: bool,
}

/// Truth value of `l` under `assign` (0 unknown, 1 true, -1 false).
fn value_of(assign: &[i8], l: Lit) -> i8 {
    let a = assign.get(l.var()).copied().unwrap_or(0);
    if l.is_pos() {
        a
    } else {
        -a
    }
}

impl Solver {
    /// Builds a solver for `cnf`. Unit clauses are enqueued at the root
    /// level immediately; an empty clause (or contradictory units) makes
    /// the first [`Solver::solve`] return [`SatOutcome::Unsat`] outright.
    #[must_use]
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let nvars = cnf.num_vars();
        let mut s = Solver {
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * nvars],
            assign: vec![0; nvars],
            level: vec![0; nvars],
            reason: vec![-1; nvars],
            trail: Vec::with_capacity(nvars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; nvars],
            var_inc: 1.0,
            phase: vec![false; nvars],
            seen: vec![false; nvars],
            analyze_scratch: Vec::new(),
            order_heap: (0..nvars as u32).collect(),
            order_pos: (0..nvars as i32).collect(),
            stats: SatStats::default(),
            conflict_limit: None,
            root_conflict: false,
        };
        for clause in cnf.clauses() {
            match clause.len() {
                0 => s.root_conflict = true,
                1 => {
                    if !s.enqueue(clause[0], -1) {
                        s.root_conflict = true;
                    }
                }
                _ => {
                    let ci = s.clauses.len() as u32;
                    s.watches[clause[0].index()].push(ci);
                    s.watches[clause[1].index()].push(ci);
                    s.clauses.push(clause.clone());
                }
            }
        }
        s
    }

    /// Caps the number of conflicts this solver will analyze before giving
    /// up with [`SatOutcome::Unknown`]. The cap is internal and
    /// deterministic: reaching it does **not** exhaust the external
    /// budget, so a portfolio member using it still reports `Complete`.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Runs the CDCL search to completion, budget exhaustion, or the
    /// conflict limit. One unit of work is charged at [`SAT_TICK`] per
    /// decision and per conflict; a failed tick (exhaustion or an injected
    /// chaos fault) returns [`SatOutcome::Unknown`] immediately.
    pub fn solve(&mut self, budget: &Budget) -> SatOutcome {
        let span = obs::current_or(budget.recorder()).span("sat.solve");
        let _cur = obs::enter(span.recorder());
        let before = self.stats;
        let out = self.search(budget);
        obs::count(
            obs::Counter::SatDecisions,
            self.stats.decisions - before.decisions,
        );
        obs::count(
            obs::Counter::SatPropagations,
            self.stats.propagations - before.propagations,
        );
        obs::count(
            obs::Counter::SatConflicts,
            self.stats.conflicts - before.conflicts,
        );
        out
    }

    fn search(&mut self, budget: &Budget) -> SatOutcome {
        if self.root_conflict {
            return SatOutcome::Unsat;
        }
        let mut restart_limit: u64 = 128;
        let mut conflicts_at_restart: u64 = self.stats.conflicts;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if !budget.tick(SAT_TICK, 1) {
                    return SatOutcome::Unknown;
                }
                if let Some(limit) = self.conflict_limit {
                    if self.stats.conflicts >= limit {
                        return SatOutcome::Unknown;
                    }
                }
                if self.trail_lim.is_empty() {
                    self.root_conflict = true;
                    return SatOutcome::Unsat;
                }
                let (learnt, blevel) = self.analyze(confl);
                self.cancel_until(blevel);
                self.record(learnt);
                self.var_inc /= 0.95;
                if self.stats.conflicts - conflicts_at_restart >= restart_limit {
                    conflicts_at_restart = self.stats.conflicts;
                    restart_limit = restart_limit.saturating_mul(2);
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            } else if let Some(v) = self.pick_branch_var() {
                self.stats.decisions += 1;
                if !budget.tick(SAT_TICK, 1) {
                    return SatOutcome::Unknown;
                }
                self.trail_lim.push(self.trail.len());
                let l = if self.phase[v] { Lit::pos(v) } else { Lit::neg(v) };
                let _ = self.enqueue(l, -1);
            } else {
                return SatOutcome::Sat(self.assign.iter().map(|&a| a == 1).collect());
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: i32) -> bool {
        match value_of(&self.assign, l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var();
                self.assign[v] = if l.is_pos() { 1 } else { -1 };
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation over the two-watch scheme; returns the conflicting
    /// clause index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let fl = p.negated();
            let mut ws = std::mem::take(&mut self.watches[fl.index()]);
            let mut kept = 0usize;
            let mut i = 0usize;
            let mut conflict = None;
            while i < ws.len() {
                let ci = ws[i];
                i += 1;
                // Inspect the clause under disjoint field borrows; decide
                // what to do, then act after the borrow ends.
                enum Step {
                    Keep,
                    Moved(Lit),
                    Imply(Lit),
                    Conflict,
                }
                let step = {
                    let c = &mut self.clauses[ci as usize];
                    if c[0] == fl {
                        c.swap(0, 1);
                    }
                    if value_of(&self.assign, c[0]) == 1 {
                        Step::Keep
                    } else {
                        let mut found = usize::MAX;
                        for (k, &cand) in c.iter().enumerate().skip(2) {
                            if value_of(&self.assign, cand) != -1 {
                                found = k;
                                break;
                            }
                        }
                        if found != usize::MAX {
                            c.swap(1, found);
                            Step::Moved(c[1])
                        } else if value_of(&self.assign, c[0]) == 0 {
                            Step::Imply(c[0])
                        } else {
                            Step::Conflict
                        }
                    }
                };
                match step {
                    Step::Keep => {
                        ws[kept] = ci;
                        kept += 1;
                    }
                    Step::Moved(w) => {
                        self.watches[w.index()].push(ci);
                    }
                    Step::Imply(first) => {
                        self.stats.propagations += 1;
                        let _ = self.enqueue(first, ci as i32);
                        ws[kept] = ci;
                        kept += 1;
                    }
                    Step::Conflict => {
                        // Keep this and every unprocessed watch, stop
                        // propagating, and report the conflict.
                        ws[kept] = ci;
                        kept += 1;
                        while i < ws.len() {
                            ws[kept] = ws[i];
                            kept += 1;
                            i += 1;
                        }
                        conflict = Some(ci);
                    }
                }
            }
            ws.truncate(kept);
            self.watches[fl.index()].append(&mut ws);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first, a backjump-level literal second) and the backtrack
    /// level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // slot 0: the UIP
        let current = self.trail_lim.len() as u32;
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut ci = conflict as i32;
        let mut index = self.trail.len();
        let mut scratch = std::mem::take(&mut self.analyze_scratch);
        loop {
            scratch.clear();
            if ci >= 0 {
                if let Some(c) = self.clauses.get(ci as usize) {
                    scratch.extend_from_slice(c);
                }
            }
            let start = usize::from(p.is_some());
            for &q in &scratch[start..] {
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            let mut next = None;
            while index > 0 {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var()] {
                    next = Some(l);
                    break;
                }
            }
            let Some(pl) = next else { break };
            let v = pl.var();
            p = Some(pl);
            ci = self.reason[v];
            self.seen[v] = false;
            counter = counter.saturating_sub(1);
            if counter == 0 {
                break;
            }
        }
        self.analyze_scratch = scratch;
        if let Some(uip) = p {
            learnt[0] = uip.negated();
        } else {
            // Defensive: malformed analysis state; learn nothing useful
            // but stay consistent by backtracking one level.
            learnt.truncate(1);
            learnt[0] = Lit::pos(0);
        }
        // Backjump to the second-highest decision level in the clause and
        // put one literal of that level at slot 1 (the second watch).
        let mut blevel = 0u32;
        let mut pos = 1usize;
        for (k, &l) in learnt.iter().enumerate().skip(1) {
            if self.level[l.var()] > blevel {
                blevel = self.level[l.var()];
                pos = k;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, pos);
        }
        for &l in &learnt {
            self.seen[l.var()] = false;
        }
        (learnt, blevel as usize)
    }

    fn cancel_until(&mut self, blevel: usize) {
        while self.trail_lim.len() > blevel {
            let lim = self.trail_lim.pop().unwrap_or(0);
            while self.trail.len() > lim {
                if let Some(l) = self.trail.pop() {
                    let v = l.var();
                    self.phase[v] = l.is_pos();
                    self.assign[v] = 0;
                    self.reason[v] = -1;
                    self.order_insert(v);
                }
            }
        }
        self.qhead = self.trail.len();
    }

    /// Installs a learned clause and asserts its first literal.
    fn record(&mut self, learnt: Vec<Lit>) {
        let Some(&l0) = learnt.first() else { return };
        if learnt.len() == 1 {
            let _ = self.enqueue(l0, -1);
        } else {
            self.stats.learned += 1;
            let ci = self.clauses.len() as u32;
            self.watches[learnt[0].index()].push(ci);
            self.watches[learnt[1].index()].push(ci);
            self.clauses.push(learnt);
            let _ = self.enqueue(l0, ci as i32);
        }
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.order_pos[v];
        if pos >= 0 {
            self.sift_up(pos as usize);
        }
    }

    /// Heap priority: higher activity first, lower index on ties — the
    /// same order the original linear scan produced, at `O(log n)`.
    fn order_before(&self, a: u32, b: u32) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (v, pv) = (self.order_heap[i], self.order_heap[parent]);
            if !self.order_before(v, pv) {
                break;
            }
            self.order_heap.swap(i, parent);
            self.order_pos[v as usize] = parent as i32;
            self.order_pos[pv as usize] = i as i32;
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.order_heap.len() && self.order_before(self.order_heap[l], self.order_heap[best]) {
                best = l;
            }
            if r < self.order_heap.len() && self.order_before(self.order_heap[r], self.order_heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            let (v, bv) = (self.order_heap[i], self.order_heap[best]);
            self.order_heap.swap(i, best);
            self.order_pos[v as usize] = best as i32;
            self.order_pos[bv as usize] = i as i32;
            i = best;
        }
    }

    fn order_insert(&mut self, v: usize) {
        if self.order_pos[v] >= 0 {
            return;
        }
        self.order_pos[v] = self.order_heap.len() as i32;
        self.order_heap.push(v as u32);
        self.sift_up(self.order_heap.len() - 1);
    }

    /// Highest-activity unassigned variable (lowest index breaks ties),
    /// or `None` when the assignment is total. Assigned entries are
    /// discarded lazily as they surface.
    fn pick_branch_var(&mut self) -> Option<usize> {
        while let Some(&top) = self.order_heap.first() {
            let v = top as usize;
            // Pop the root: move the last leaf up and restore the heap.
            self.order_pos[v] = -1;
            if let Some(last) = self.order_heap.pop() {
                if !self.order_heap.is_empty() {
                    self.order_heap[0] = last;
                    self.order_pos[last as usize] = 0;
                    self.sift_down(0);
                }
            }
            if self.assign[v] == 0 {
                return Some(v);
            }
        }
        None
    }
}

/// An untyped face-constrained encoding instance: `n` symbols to place
/// injectively on the `nv`-cube, with each `groups[c]` requiring an SOP
/// cover (member codes on, other symbols' codes off, unused vertices
/// don't-care).
///
/// This deliberately mirrors `GroupConstraint` without depending on the
/// constraints crate: the logic layer stays a leaf, and the typed
/// `ExactOracle` in `picola-sat` does the translation.
#[derive(Clone, Debug)]
pub struct FaceProblem {
    /// Number of symbols.
    pub n: usize,
    /// Code length in bits.
    pub nv: usize,
    /// Constraint groups as member-index lists (callers should pass only
    /// non-trivial groups; indices `>= n` are ignored defensively).
    pub groups: Vec<Vec<usize>>,
}

/// The compiled CNF for a [`FaceProblem`] at a specific cube bound, with
/// enough bookkeeping to decode models back into codes and covers.
#[derive(Clone, Debug)]
pub struct FaceCnf {
    /// The formula.
    pub cnf: Cnf,
    /// The bound it was compiled at.
    pub bound: usize,
    code: Vec<Vec<usize>>,
    sel: Vec<Vec<usize>>,
    free: Vec<Vec<Vec<usize>>>,
    val: Vec<Vec<Vec<usize>>>,
}

impl FaceProblem {
    /// Compiles the instance into CNF: satisfiable iff some injective
    /// encoding admits per-group covers totalling at most `bound` cubes.
    #[must_use]
    pub fn compile(&self, bound: usize) -> FaceCnf {
        let n = self.n;
        let nv = self.nv;
        let mut cnf = Cnf::new();
        let code: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..nv).map(|_| cnf.new_var()).collect())
            .collect();
        let mut out = FaceCnf {
            cnf,
            bound,
            code,
            sel: Vec::new(),
            free: Vec::new(),
            val: Vec::new(),
        };
        // More symbols than vertices: no injective map exists.
        if nv >= usize::BITS as usize || n > (1usize << nv) {
            out.cnf.add_clause(&[]);
            return out;
        }
        // Symmetry breaking over the hypercube automorphism group:
        // complementation pins symbol 0 to the origin, bit permutation
        // then sorts symbol 1's bits into non-increasing order.
        if n > 0 {
            for b in 0..nv {
                out.cnf.add_clause(&[Lit::neg(out.code[0][b])]);
            }
        }
        if n > 1 {
            for b in 0..nv.saturating_sub(1) {
                out.cnf
                    .add_clause(&[Lit::pos(out.code[1][b]), Lit::neg(out.code[1][b + 1])]);
            }
        }
        // Injectivity: for every pair, some bit differs.
        for s in 0..n {
            for t in (s + 1)..n {
                let mut diff = Vec::with_capacity(nv);
                for b in 0..nv {
                    let d = out.cnf.new_var();
                    out.cnf.add_clause(&[
                        Lit::neg(d),
                        Lit::pos(out.code[s][b]),
                        Lit::pos(out.code[t][b]),
                    ]);
                    out.cnf.add_clause(&[
                        Lit::neg(d),
                        Lit::neg(out.code[s][b]),
                        Lit::neg(out.code[t][b]),
                    ]);
                    diff.push(Lit::pos(d));
                }
                out.cnf.add_clause(&diff);
            }
        }
        // Cube slots per group. A minimum cover never needs more cubes
        // than the group has members (singletons always work under
        // injectivity), nor more than the bound leaves after giving every
        // other group its mandatory first cube.
        let g_count = self.groups.len();
        let avail = (bound + 1).saturating_sub(g_count).max(1);
        let mut all_sel: Vec<Lit> = Vec::new();
        for g in &self.groups {
            let members: Vec<usize> = g.iter().copied().filter(|&s| s < n).collect();
            let m = members.len().max(1).min(avail);
            let mut sels = Vec::with_capacity(m);
            let mut frees = Vec::with_capacity(m);
            let mut vals = Vec::with_capacity(m);
            for j in 0..m {
                let sel = out.cnf.new_var();
                let free: Vec<usize> = (0..nv).map(|_| out.cnf.new_var()).collect();
                let val: Vec<usize> = (0..nv).map(|_| out.cnf.new_var()).collect();
                if j == 0 {
                    // Every (non-empty) group needs at least one cube.
                    if !members.is_empty() {
                        out.cnf.add_clause(&[Lit::pos(sel)]);
                    }
                } else {
                    // Selected slots form a prefix (slot-order symmetry).
                    out.cnf.add_clause(&[Lit::pos(sels[j - 1]), Lit::neg(sel)]);
                }
                // Exclusion: a selected cube contains no non-member code.
                // mm[b] asserts "bit b is fixed and symbol t differs there".
                for t in (0..n).filter(|t| !members.contains(t)) {
                    let mut mms = vec![Lit::neg(sel)];
                    for b in 0..nv {
                        let mm = out.cnf.new_var();
                        out.cnf.add_clause(&[Lit::neg(mm), Lit::neg(free[b])]);
                        out.cnf.add_clause(&[
                            Lit::neg(mm),
                            Lit::pos(out.code[t][b]),
                            Lit::pos(val[b]),
                        ]);
                        out.cnf.add_clause(&[
                            Lit::neg(mm),
                            Lit::neg(out.code[t][b]),
                            Lit::neg(val[b]),
                        ]);
                        mms.push(Lit::pos(mm));
                    }
                    out.cnf.add_clause(&mms);
                }
                all_sel.push(Lit::pos(sel));
                sels.push(sel);
                frees.push(free);
                vals.push(val);
            }
            // Coverage: each member's code lies inside some selected cube.
            // cov asserts "cube j is selected and matches s on every
            // fixed bit".
            for &s in &members {
                let mut covs = Vec::with_capacity(m);
                for j in 0..m {
                    let cov = out.cnf.new_var();
                    out.cnf.add_clause(&[Lit::neg(cov), Lit::pos(sels[j])]);
                    for b in 0..nv {
                        out.cnf.add_clause(&[
                            Lit::neg(cov),
                            Lit::pos(frees[j][b]),
                            Lit::neg(out.code[s][b]),
                            Lit::pos(vals[j][b]),
                        ]);
                        out.cnf.add_clause(&[
                            Lit::neg(cov),
                            Lit::pos(frees[j][b]),
                            Lit::pos(out.code[s][b]),
                            Lit::neg(vals[j][b]),
                        ]);
                    }
                    covs.push(Lit::pos(cov));
                }
                out.cnf.add_clause(&covs);
            }
            out.sel.push(sels);
            out.free.push(frees);
            out.val.push(vals);
        }
        out.cnf.add_at_most_k(&all_sel, bound);
        out
    }
}

impl FaceCnf {
    /// Decodes a model into the per-symbol codes.
    #[must_use]
    pub fn decode_codes(&self, model: &[bool]) -> Vec<u32> {
        self.code
            .iter()
            .map(|bits| {
                let mut c = 0u32;
                for (b, &v) in bits.iter().enumerate() {
                    if model.get(v).copied().unwrap_or(false) {
                        c |= 1 << b;
                    }
                }
                c
            })
            .collect()
    }

    /// Decodes a model into per-group covers: each selected cube as a
    /// `(fixed_mask, value)` pair — code `c` lies inside iff
    /// `c & fixed_mask == value`.
    #[must_use]
    pub fn decode_covers(&self, model: &[bool]) -> Vec<Vec<(u32, u32)>> {
        let on = |v: usize| model.get(v).copied().unwrap_or(false);
        self.sel
            .iter()
            .zip(self.free.iter().zip(&self.val))
            .map(|(sels, (frees, vals))| {
                let mut cubes = Vec::new();
                for (j, &sel) in sels.iter().enumerate() {
                    if !on(sel) {
                        continue;
                    }
                    let mut mask = 0u32;
                    let mut value = 0u32;
                    for b in 0..frees[j].len() {
                        if !on(frees[j][b]) {
                            mask |= 1 << b;
                            if on(vals[j][b]) {
                                value |= 1 << b;
                            }
                        }
                    }
                    cubes.push((mask, value));
                }
                cubes
            })
            .collect()
    }

    /// Total number of selected cubes in a model.
    #[must_use]
    pub fn selected_cubes(&self, model: &[bool]) -> usize {
        self.decode_covers(model).iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(cnf: &Cnf) -> SatOutcome {
        Solver::from_cnf(cnf).solve(&Budget::unlimited())
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(solve(&Cnf::new()).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause(&[]);
        assert_eq!(solve(&cnf), SatOutcome::Unsat);
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        cnf.add_clause(&[Lit::pos(v)]);
        cnf.add_clause(&[Lit::neg(v)]);
        assert_eq!(solve(&cnf), SatOutcome::Unsat);
    }

    #[test]
    fn simple_implication_chain_is_sat() {
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..8).map(|_| cnf.new_var()).collect();
        cnf.add_clause(&[Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            cnf.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        match solve(&cnf) {
            SatOutcome::Sat(model) => {
                for &v in &vars {
                    assert!(model[v], "chain forces every variable true");
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // h indexes every pigeon's row
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][h], each pigeon somewhere, no hole shared.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..3)
            .map(|_| (0..2).map(|_| cnf.new_var()).collect())
            .collect();
        for row in &p {
            cnf.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    cnf.add_clause(&[Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
                }
            }
        }
        assert_eq!(solve(&cnf), SatOutcome::Unsat);
    }

    #[test]
    fn at_most_k_counts_correctly() {
        for k in 0..=4usize {
            let mut cnf = Cnf::new();
            let vars: Vec<usize> = (0..4).map(|_| cnf.new_var()).collect();
            let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
            cnf.add_at_most_k(&lits, k);
            // Force exactly k+1 true when possible: must be UNSAT.
            if k < 4 {
                let mut over = cnf.clone();
                for &v in vars.iter().take(k + 1) {
                    over.add_clause(&[Lit::pos(v)]);
                }
                assert_eq!(solve(&over), SatOutcome::Unsat, "k={k}: k+1 true");
            }
            // Exactly k true must be SAT.
            let mut exact = cnf.clone();
            for (i, &v) in vars.iter().enumerate() {
                if i < k {
                    exact.add_clause(&[Lit::pos(v)]);
                } else {
                    exact.add_clause(&[Lit::neg(v)]);
                }
            }
            assert!(solve(&exact).is_sat(), "k={k}: exactly k true");
        }
    }

    #[test]
    fn dimacs_round_trip_is_identity() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_clause(&[Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause(&[Lit::neg(a), Lit::pos(b), Lit::pos(c)]);
        cnf.add_clause(&[Lit::neg(c)]);
        let text = cnf.to_dimacs();
        let back = Cnf::parse_dimacs(&text).expect("round trip parses");
        assert_eq!(back, cnf);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(Cnf::parse_dimacs("p cnf x y").is_err());
        assert!(Cnf::parse_dimacs("1 2 potato 0").is_err());
        assert!(Cnf::parse_dimacs("1 2 3").is_err(), "unterminated clause");
        assert!(Cnf::parse_dimacs("p cnf 99999999 1").is_err());
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A formula with enough search that a zero-work budget cannot
        // finish: the first decision tick fails.
        let mut cnf = Cnf::new();
        let vars: Vec<usize> = (0..6).map(|_| cnf.new_var()).collect();
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                cnf.add_clause(&[Lit::pos(vars[i]), Lit::pos(vars[j])]);
            }
        }
        let budget = Budget::with_work_limit(0);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(&budget), SatOutcome::Unknown);
        assert!(budget.is_exhausted());
    }

    #[test]
    fn chaos_fault_returns_unknown() {
        let _guard = crate::chaos::arm(SAT_TICK, 0);
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        let w = cnf.new_var();
        cnf.add_clause(&[Lit::pos(v), Lit::pos(w)]);
        let budget = Budget::unlimited();
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(&budget), SatOutcome::Unknown);
        assert!(budget.is_exhausted(), "injected fault latches the budget");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // h indexes every pigeon's row
    fn conflict_limit_returns_unknown_without_exhausting() {
        // Pigeonhole 4->3 needs more than one conflict.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<usize>> = (0..4)
            .map(|_| (0..3).map(|_| cnf.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            cnf.add_clause(&lits);
        }
        for h in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    cnf.add_clause(&[Lit::neg(p[i][h]), Lit::neg(p[j][h])]);
                }
            }
        }
        let budget = Budget::unlimited();
        let mut solver = Solver::from_cnf(&cnf);
        solver.set_conflict_limit(Some(1));
        assert_eq!(solver.solve(&budget), SatOutcome::Unknown);
        assert!(!budget.is_exhausted(), "internal cap leaves the budget alone");
    }

    #[test]
    fn face_problem_single_group_embeds_as_one_cube() {
        // 4 symbols on the 2-cube, group {0,1}: one cube suffices.
        let p = FaceProblem {
            n: 4,
            nv: 2,
            groups: vec![vec![0, 1]],
        };
        let fc = p.compile(1);
        let mut solver = Solver::from_cnf(&fc.cnf);
        match solver.solve(&Budget::unlimited()) {
            SatOutcome::Sat(model) => {
                let codes = fc.decode_codes(&model);
                let mut sorted = codes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 4, "codes are distinct: {codes:?}");
                let covers = fc.decode_covers(&model);
                assert_eq!(covers.len(), 1);
                assert_eq!(covers[0].len(), 1);
                let (mask, value) = covers[0][0];
                assert_eq!(codes[0] & mask, value);
                assert_eq!(codes[1] & mask, value);
                assert_ne!(codes[2] & mask, value);
                assert_ne!(codes[3] & mask, value);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn face_problem_overfull_domain_is_unsat() {
        let p = FaceProblem {
            n: 5,
            nv: 2,
            groups: vec![],
        };
        let fc = p.compile(0);
        assert_eq!(solve(&fc.cnf), SatOutcome::Unsat);
    }

    #[test]
    fn face_problem_bound_below_group_count_is_unsat() {
        let p = FaceProblem {
            n: 8,
            nv: 3,
            groups: vec![vec![0, 1], vec![2, 3]],
        };
        assert_eq!(solve(&p.compile(1).cnf), SatOutcome::Unsat);
        assert!(solve(&p.compile(2).cnf).is_sat());
    }
}
