//! Multi-valued PLA text format (ESPRESSO-MV's `.mv` dialect).
//!
//! Header `.mv <num_vars> <num_binary> <sizes…>` declares the variable
//! structure: `num_binary` two-valued variables followed by multi-valued
//! variables with the given part counts; the **last** variable is treated
//! as the output field. Cube lines give the binary literals as one
//! `0`/`1`/`-` group and each multi-valued literal as a positional
//! `0`/`1` string, groups separated by whitespace or `|`.
//!
//! This is the format NOVA-era input-encoding problems circulate in; the
//! reader/writer here lets the benches and the CLI exchange such problems
//! directly.

use crate::chaos;
use crate::cover::Cover;
use crate::cube::Cube;
use crate::domain::{Domain, DomainBuilder};
use crate::error::{ParseLimits, ParsePlaError};
use std::fmt::Write as _;

/// Parses a multi-valued PLA with default [`ParseLimits`], returning its
/// domain and on-set cover.
///
/// # Errors
///
/// Returns [`ParsePlaError`] on malformed headers, width mismatches, or
/// illegal characters.
pub fn parse_mv_pla(text: &str) -> Result<(Domain, Cover), ParsePlaError> {
    parse_mv_pla_with(text, &ParseLimits::default())
}

/// Parses a multi-valued PLA, enforcing explicit input `limits` so untrusted
/// files fail fast with a line-numbered diagnostic instead of exhausting
/// memory.
///
/// # Errors
///
/// Returns [`ParsePlaError`] on malformed headers, width mismatches,
/// illegal characters, or when any of the `limits` is exceeded.
pub fn parse_mv_pla_with(
    text: &str,
    limits: &ParseLimits,
) -> Result<(Domain, Cover), ParsePlaError> {
    if let Some(msg) = chaos::fail_point("mvpla.parse") {
        return Err(ParsePlaError::new(0, &msg));
    }
    if text
        .lines()
        .all(|l| l.split('#').next().unwrap_or("").trim().is_empty())
    {
        // A zero-length frame is what a dropped socket delivers; name it
        // instead of the misleading "missing .mv header".
        return Err(ParsePlaError::new(
            0,
            "empty input: zero-length or whitespace-only multi-valued PLA",
        ));
    }
    let mut sizes: Option<Vec<usize>> = None;
    let mut num_binary = 0usize;
    let mut cube_lines: Vec<(usize, String)> = Vec::new();
    let mut terminated = false;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if raw.len() > limits.max_line_len {
            return Err(ParsePlaError::new(
                lineno,
                &format!(
                    "line length {} exceeds the limit of {} bytes",
                    raw.len(),
                    limits.max_line_len
                ),
            ));
        }
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            match it.next().unwrap_or("") {
                "mv" => {
                    let nums: Vec<usize> = it
                        .map(|v| {
                            v.parse().map_err(|_| {
                                ParsePlaError::new(lineno, ".mv takes integers")
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if nums.len() < 2 {
                        return Err(ParsePlaError::new(
                            lineno,
                            ".mv needs <num_vars> <num_binary> <sizes...>",
                        ));
                    }
                    let num_vars = nums[0];
                    num_binary = nums[1];
                    let mv_sizes = &nums[2..];
                    if num_binary + mv_sizes.len() != num_vars {
                        return Err(ParsePlaError::new(
                            lineno,
                            "size list does not match the variable count",
                        ));
                    }
                    if num_binary > limits.max_inputs {
                        return Err(ParsePlaError::new(
                            lineno,
                            &format!(
                                "{num_binary} binary variables exceed the limit of {}",
                                limits.max_inputs
                            ),
                        ));
                    }
                    for &s in mv_sizes {
                        if s == 0 {
                            return Err(ParsePlaError::new(
                                lineno,
                                "multi-valued variable sizes must be at least 1",
                            ));
                        }
                        if s > limits.max_states {
                            return Err(ParsePlaError::new(
                                lineno,
                                &format!(
                                    "multi-valued size {s} exceeds the limit of {}",
                                    limits.max_states
                                ),
                            ));
                        }
                    }
                    let total_parts = 2usize
                        .saturating_mul(num_binary)
                        .saturating_add(mv_sizes.iter().fold(0usize, |a, &s| a.saturating_add(s)));
                    if total_parts > limits.max_parts {
                        return Err(ParsePlaError::new(
                            lineno,
                            &format!(
                                "domain needs {total_parts} positional parts, exceeding the limit of {}",
                                limits.max_parts
                            ),
                        ));
                    }
                    sizes = Some(mv_sizes.to_vec());
                }
                "p" | "ilb" | "ob" | "type" => { /* informational */ }
                "e" | "end" => {
                    terminated = true;
                    break;
                }
                other => {
                    return Err(ParsePlaError::new(
                        lineno,
                        &format!("unknown directive .{other}"),
                    ))
                }
            }
        } else {
            if cube_lines.len() >= limits.max_terms {
                return Err(ParsePlaError::new(
                    lineno,
                    &format!("more than {} product terms", limits.max_terms),
                ));
            }
            cube_lines.push((lineno, line.to_owned()));
        }
    }

    if !terminated && !text.ends_with('\n') {
        // No `.e` terminator and the final line is cut short: the frame
        // was truncated in transit (dropped socket, partial read).
        return Err(ParsePlaError::new(
            text.lines().count(),
            "truncated input: final line is unterminated and no .e terminator was seen",
        ));
    }
    let mv_sizes = sizes.ok_or_else(|| ParsePlaError::new(0, "missing .mv header"))?;
    if mv_sizes.is_empty() {
        return Err(ParsePlaError::new(0, "need at least one multi-valued variable (the output)"));
    }

    let mut builder = DomainBuilder::new().binaries("x", num_binary);
    for (i, &s) in mv_sizes.iter().enumerate() {
        if i + 1 == mv_sizes.len() {
            builder = builder.output("z", s);
        } else {
            builder = builder.multi(&format!("m{i}"), s);
        }
    }
    let dom = builder.build();

    let mut cover = Cover::empty(&dom);
    for (lineno, line) in cube_lines {
        let groups: Vec<&str> = line
            .split(|c: char| c.is_whitespace() || c == '|')
            .filter(|g| !g.is_empty())
            .collect();
        let expected = usize::from(num_binary > 0) + mv_sizes.len();
        if groups.len() != expected {
            return Err(ParsePlaError::new(
                lineno,
                &format!("expected {expected} fields, found {}", groups.len()),
            ));
        }
        let mut cube = Cube::full(&dom);
        let mut gi = 0;
        if num_binary > 0 {
            let g = groups[gi];
            gi += 1;
            if g.len() != num_binary {
                return Err(ParsePlaError::new(lineno, "binary field width mismatch"));
            }
            for (v, ch) in g.chars().enumerate() {
                match ch {
                    '0' => cube.restrict_binary(&dom, v, false),
                    '1' => cube.restrict_binary(&dom, v, true),
                    '-' | '2' => {}
                    _ => {
                        return Err(ParsePlaError::new(
                            lineno,
                            &format!("bad binary character {ch:?}"),
                        ))
                    }
                }
            }
        }
        for (k, &size) in mv_sizes.iter().enumerate() {
            let g = groups[gi];
            gi += 1;
            if g.len() != size {
                return Err(ParsePlaError::new(
                    lineno,
                    &format!("multi-valued field {k} width mismatch"),
                ));
            }
            let var = num_binary + k;
            let offset = dom.var(var).offset();
            for (p, ch) in g.chars().enumerate() {
                match ch {
                    '1' | '4' => {}
                    '0' => cube.clear_part(offset + p),
                    _ => {
                        return Err(ParsePlaError::new(
                            lineno,
                            &format!("bad positional character {ch:?}"),
                        ))
                    }
                }
            }
        }
        cover.push(cube);
    }

    Ok((dom, cover))
}

/// Serializes a multi-valued cover in the `.mv` dialect.
///
/// # Panics
///
/// Panics if the domain has no output variable (use [`crate::pla`] for
/// plain binary PLAs).
pub fn write_mv_pla(cover: &Cover) -> String {
    use crate::domain::VarKind;
    let dom = cover.domain();
    assert!(
        dom.output_var().is_some(),
        "mv PLA requires an output variable"
    );
    let num_binary = dom
        .vars()
        .iter()
        .filter(|v| v.kind() == VarKind::Binary)
        .count();
    let mv_sizes: Vec<usize> = dom
        .vars()
        .iter()
        .filter(|v| v.kind() != VarKind::Binary)
        .map(|v| v.parts())
        .collect();

    let mut out = String::new();
    let _ = write!(out, ".mv {} {num_binary}", dom.num_vars());
    for s in &mv_sizes {
        let _ = write!(out, " {s}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, ".p {}", cover.len());
    for cube in cover.iter() {
        let mut fields: Vec<String> = Vec::new();
        if num_binary > 0 {
            let mut g = String::with_capacity(num_binary);
            for v in 0..num_binary {
                let b0 = cube.has_part(dom.var(v).offset());
                let b1 = cube.has_part(dom.var(v).offset() + 1);
                g.push(match (b0, b1) {
                    (true, true) => '-',
                    (false, true) => '1',
                    (true, false) => '0',
                    (false, false) => '?',
                });
            }
            fields.push(g);
        }
        for v in num_binary..dom.num_vars() {
            let var = dom.var(v);
            let g: String = var
                .part_range()
                .map(|p| if cube.has_part(p) { '1' } else { '0' })
                .collect();
            fields.push(g);
        }
        let _ = writeln!(out, "{}", fields.join(" | "));
    }
    let _ = writeln!(out, ".e");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equivalent;

    const SAMPLE: &str = "\
# an input-encoding problem: 2 binary inputs, a 4-valued symbol, 3 outputs
.mv 4 2 4 3
.p 3
1- | 1100 | 100
-0 | 0011 | 010
11 | 1111 | 001
.e
";

    #[test]
    fn parse_mv_header_and_cubes() {
        let (dom, cover) = parse_mv_pla(SAMPLE).unwrap();
        assert_eq!(dom.num_vars(), 4);
        assert_eq!(dom.var(2).parts(), 4);
        assert_eq!(dom.output_var(), Some(3));
        assert_eq!(cover.len(), 3);
        // first cube: symbol literal {0, 1}
        assert!(cover.cubes()[0].var_parts(&dom, 2).eq([0, 1]));
    }

    #[test]
    fn roundtrip() {
        let (dom, cover) = parse_mv_pla(SAMPLE).unwrap();
        let text = write_mv_pla(&cover);
        let (dom2, back) = parse_mv_pla(&text).unwrap();
        assert_eq!(dom, dom2);
        assert!(equivalent(&cover, &back));
    }

    #[test]
    fn symbolic_cover_roundtrips() {
        // write a symbolic-cover-shaped domain and read it back
        let dom = DomainBuilder::new()
            .binaries("x", 3)
            .multi("ps", 5)
            .output("z", 7)
            .build();
        let mut cover = Cover::empty(&dom);
        let mut c = Cube::full(&dom);
        c.restrict(&dom, 3, 2);
        let ov = dom.output_var().unwrap();
        for p in dom.var(ov).part_range().skip(1) {
            c.clear_part(p);
        }
        cover.push(c);
        let text = write_mv_pla(&cover);
        let (dom2, back) = parse_mv_pla(&text).unwrap();
        assert_eq!(dom2.var(3).parts(), 5);
        assert_eq!(back.len(), 1);
        assert!(back.cubes()[0].var_parts(&dom2, 3).eq([2]));
    }

    #[test]
    fn header_errors() {
        assert!(parse_mv_pla("1- | 10\n").is_err());
        assert!(parse_mv_pla(".mv 3 2\n").is_err()); // sizes missing
        assert!(parse_mv_pla(".mv 3 1 2 2\n1 | 10 | 11 | 00\n").is_err()); // extra field
    }

    #[test]
    fn width_errors() {
        let text = ".mv 2 1 2\n1- | 10\n";
        assert!(parse_mv_pla(text).is_err()); // binary field too wide
    }

    #[test]
    fn no_binary_vars_is_fine() {
        let text = ".mv 2 0 3 2\n110 | 10\n";
        let (dom, cover) = parse_mv_pla(text).unwrap();
        assert_eq!(dom.num_vars(), 2);
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn zero_sized_mv_variable_rejected() {
        assert!(parse_mv_pla(".mv 2 0 0 2\n").is_err());
    }

    #[test]
    fn oversized_header_rejected() {
        let limits = ParseLimits {
            max_states: 8,
            ..ParseLimits::default()
        };
        let err = parse_mv_pla_with(".mv 2 0 100 2\n", &limits).unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn term_limit_enforced() {
        let limits = ParseLimits {
            max_terms: 1,
            ..ParseLimits::default()
        };
        let text = ".mv 2 0 2 2\n10 | 10\n01 | 01\n";
        let err = parse_mv_pla_with(text, &limits).unwrap_err();
        assert_eq!(err.line(), 3);
    }

    #[test]
    fn injected_parse_fault_surfaces_as_error() {
        let _guard = chaos::arm("mvpla.parse", 0);
        let err = parse_mv_pla(SAMPLE).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }

    #[test]
    fn empty_input_named_explicitly() {
        for text in ["", " \n", "# nothing here\n"] {
            let err = parse_mv_pla(text).unwrap_err();
            assert!(err.to_string().contains("empty input"), "{text:?}: {err}");
            assert_eq!(err.line(), 0);
        }
    }

    #[test]
    fn truncated_frame_rejected_with_line_number() {
        // as if the socket dropped mid-line: no trailing newline, no .e
        let text = ".mv 4 2 4 3\n1- | 1100 | 100\n-0 | 00";
        let err = parse_mv_pla(text).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        assert_eq!(err.line(), 3);
        // the same bytes with the frame completed parse fine
        assert!(parse_mv_pla(".mv 4 2 4 3\n1- | 1100 | 100\n-0 | 0011 | 010\n").is_ok());
        // an unterminated line is fine when .e closed the frame first
        assert!(parse_mv_pla(".mv 4 2 4 3\n1- | 1100 | 100\n.e").is_ok());
    }
}
