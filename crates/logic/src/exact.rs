//! Exact two-level minimization (Quine–McCluskey style) for small functions.
//!
//! Generates all primes by iterated consensus, then solves the unate covering
//! problem over the on-set minterms by branch and bound. Exponential: use
//! only on functions with a small input space (the PICOLA constraint
//! functions, with `nv ≤ 8` code bits, qualify). Serves as a quality oracle
//! for the heuristic [`crate::espresso()`] in tests and ablations.

use crate::cover::Cover;
use crate::primes::all_primes;

/// Result of an exact minimization attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactOutcome {
    /// A provably minimum cover was found.
    Minimum(Cover),
    /// The search was abandoned after exceeding the node budget; the best
    /// cover found so far is returned.
    BudgetExceeded(Cover),
}

impl ExactOutcome {
    /// The cover, minimal or best-effort.
    pub fn cover(&self) -> &Cover {
        match self {
            ExactOutcome::Minimum(c) | ExactOutcome::BudgetExceeded(c) => c,
        }
    }
}

/// Exactly minimizes `(on, dc)` with a search budget of `max_nodes`
/// branch-and-bound nodes.
///
/// # Panics
///
/// Panics if the domains differ.
pub fn exact_minimize(on: &Cover, dc: &Cover, max_nodes: usize) -> ExactOutcome {
    let dom = on.domain();
    assert_eq!(dom, dc.domain(), "exact_minimize: domain mismatch");
    if on.is_empty() {
        return ExactOutcome::Minimum(Cover::empty(dom));
    }
    let primes = all_primes(on, dc);

    // Minterms of the on-set that must be covered.
    let points: Vec<Vec<usize>> = Cover::enumerate_points(dom)
        .into_iter()
        .filter(|pt| on.covers_point(pt))
        .collect();

    // Coverage matrix: per prime, the bit-set of points it covers.
    let cov: Vec<Vec<bool>> = primes
        .iter()
        .map(|p| {
            let single = Cover::from_cubes(dom, [p.clone()]);
            points.iter().map(|pt| single.covers_point(pt)).collect()
        })
        .collect();

    let npts = points.len();
    let nprimes = primes.len();
    let mut nodes = 0usize;
    let mut exceeded = false;

    // Greedy initial solution for an upper bound.
    let mut best: Option<Vec<usize>> = {
        let mut chosen = Vec::new();
        let mut covered = vec![false; npts];
        while covered.iter().any(|&c| !c) {
            let (bi, _) = (0..nprimes)
                .map(|i| {
                    let gain = (0..npts).filter(|&j| !covered[j] && cov[i][j]).count();
                    (i, gain)
                })
                .max_by_key(|&(_, g)| g)
                .expect("primes cover the on-set");
            chosen.push(bi);
            for j in 0..npts {
                if cov[bi][j] {
                    covered[j] = true;
                }
            }
        }
        Some(chosen)
    };

    #[allow(clippy::too_many_arguments)]
    fn search(
        cov: &[Vec<bool>],
        npts: usize,
        covered: &mut Vec<bool>,
        chosen: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
        nodes: &mut usize,
        max_nodes: usize,
        exceeded: &mut bool,
    ) {
        *nodes += 1;
        if *nodes > max_nodes {
            *exceeded = true;
            return;
        }
        // Find the first uncovered point; none left means a complete cover.
        let Some(j) = (0..npts).find(|&j| !covered[j]) else {
            if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
                *best = Some(chosen.clone());
            }
            return;
        };
        // At least one more prime is needed; prune if that cannot improve.
        if let Some(b) = best {
            if chosen.len() + 1 >= b.len() {
                return;
            }
        }
        // Branch over every prime covering point j.
        for (i, row) in cov.iter().enumerate() {
            if !row[j] {
                continue;
            }
            let newly: Vec<usize> = (0..npts).filter(|&k| !covered[k] && row[k]).collect();
            for &k in &newly {
                covered[k] = true;
            }
            chosen.push(i);
            search(cov, npts, covered, chosen, best, nodes, max_nodes, exceeded);
            chosen.pop();
            for &k in &newly {
                covered[k] = false;
            }
            if *exceeded {
                return;
            }
        }
    }

    let mut covered = vec![false; npts];
    let mut chosen = Vec::new();
    search(
        &cov, npts, &mut covered, &mut chosen, &mut best, &mut nodes, max_nodes, &mut exceeded,
    );

    let chosen = best.expect("a cover exists");
    let cover = Cover::from_cubes(dom, chosen.iter().map(|&i| primes.cubes()[i].clone()));
    if exceeded {
        ExactOutcome::BudgetExceeded(cover)
    } else {
        ExactOutcome::Minimum(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::equiv::implements;
    use crate::espresso::espresso;

    #[test]
    fn exact_matches_known_minimum() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let out = exact_minimize(&on, &Cover::empty(&dom), 100_000);
        let ExactOutcome::Minimum(c) = out else {
            panic!("budget should suffice")
        };
        assert_eq!(c.len(), 2);
        assert!(implements(&c, &on, &Cover::empty(&dom)));
    }

    #[test]
    fn exact_lower_bounds_espresso() {
        let dom = Domain::binary(4);
        for text in [
            "1100 0110 0011 1001",
            "1111 0000 1010",
            "1--- -1-- --1- ---1",
        ] {
            let on = Cover::parse(&dom, text);
            let dc = Cover::empty(&dom);
            let exact = exact_minimize(&on, &dc, 1_000_000);
            let heur = espresso(&on, &dc);
            assert!(
                exact.cover().len() <= heur.len(),
                "exact {} > espresso {} on {text}",
                exact.cover().len(),
                heur.len()
            );
            assert!(implements(exact.cover(), &on, &dc));
        }
    }

    #[test]
    fn exact_uses_dont_cares() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "111 100");
        let dc = Cover::parse(&dom, "110 101");
        let out = exact_minimize(&on, &dc, 100_000);
        assert_eq!(out.cover().len(), 1);
    }

    #[test]
    fn empty_function_minimizes_to_empty() {
        let dom = Domain::binary(2);
        let out = exact_minimize(&Cover::empty(&dom), &Cover::empty(&dom), 10);
        assert!(out.cover().is_empty());
    }
}
