//! Exact two-level minimization (Quine–McCluskey style) for small functions.
//!
//! Generates all primes by iterated consensus, then solves the unate covering
//! problem over the on-set minterms by branch and bound. Exponential: use
//! only on functions with a small input space (the PICOLA constraint
//! functions, with `nv ≤ 8` code bits, qualify). Serves as a quality oracle
//! for the heuristic [`crate::espresso()`] in tests and ablations.
//!
//! Both phases are budget-bounded: prime generation ticks `"exact.primes"`
//! per consensus pair and the covering search ticks `"exact.node"` per
//! branch-and-bound node. Exhaustion never panics — the best (greedy or
//! partially-searched) cover found so far comes back as
//! [`ExactOutcome::Truncated`].

use crate::budget::Budget;
use crate::cover::Cover;
use crate::obs;
use crate::primes::all_primes_bounded;

/// Point-enumeration guard: domains with more total points than this are
/// refused (gracefully, via [`ExactOutcome::Truncated`]) rather than
/// enumerated, since the covering matrix alone would exhaust memory.
const MAX_EXACT_POINTS: u64 = 1 << 20;

/// Result of an exact minimization attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactOutcome {
    /// A provably minimum cover was found.
    Minimum(Cover),
    /// The budget ran out (or the domain was too large to enumerate);
    /// the best valid cover found so far is returned.
    Truncated(Cover),
}

impl ExactOutcome {
    /// The cover, minimal or best-effort.
    pub fn cover(&self) -> &Cover {
        match self {
            ExactOutcome::Minimum(c) | ExactOutcome::Truncated(c) => c,
        }
    }

    /// `true` when the cover is provably minimum.
    pub fn is_minimum(&self) -> bool {
        matches!(self, ExactOutcome::Minimum(_))
    }
}

/// Exactly minimizes `(on, dc)` with a search budget of `max_nodes` work
/// units shared between prime generation and branch-and-bound search.
///
/// # Panics
///
/// Panics if the domains differ.
pub fn exact_minimize(on: &Cover, dc: &Cover, max_nodes: usize) -> ExactOutcome {
    exact_minimize_bounded(on, dc, &Budget::with_work_limit(max_nodes as u64))
}

/// Exactly minimizes `(on, dc)` under `budget`.
///
/// The returned cover always implements the function: prime generation
/// preserves coverage of the on-set even when truncated, and a greedy
/// selection provides a valid cover before the branch-and-bound search
/// refines it. Degradation costs minimality, never correctness.
///
/// # Panics
///
/// Panics if the domains differ.
pub fn exact_minimize_bounded(on: &Cover, dc: &Cover, budget: &Budget) -> ExactOutcome {
    let dom = on.domain();
    assert_eq!(dom, dc.domain(), "exact_minimize: domain mismatch");
    let span = obs::current_or(budget.recorder()).span("exact");
    let _cur = obs::enter(span.recorder());
    if on.is_empty() {
        return ExactOutcome::Minimum(Cover::empty(dom));
    }

    let fallback = || {
        let mut f = on.clone();
        f.scc();
        ExactOutcome::Truncated(f)
    };

    // Refuse to enumerate astronomically large domains.
    let total_points = (0..dom.num_vars())
        .map(|v| dom.var(v).parts() as u64)
        .try_fold(1u64, |acc, p| acc.checked_mul(p))
        .unwrap_or(u64::MAX);
    if total_points > MAX_EXACT_POINTS {
        return fallback();
    }

    let (primes, primes_complete) = all_primes_bounded(on, dc, budget);

    // Minterms of the on-set that must be covered.
    let points: Vec<Vec<usize>> = Cover::enumerate_points(dom)
        .into_iter()
        .filter(|pt| on.covers_point(pt))
        .collect();

    // Coverage matrix: per prime, the bit-set of points it covers.
    let cov: Vec<Vec<bool>> = primes
        .iter()
        .map(|p| {
            let single = Cover::from_cubes(dom, [p.clone()]);
            points.iter().map(|pt| single.covers_point(pt)).collect()
        })
        .collect();

    let npts = points.len();
    let nprimes = primes.len();

    // Greedy initial solution for an upper bound (and as the guaranteed
    // best-so-far under budget exhaustion). Runs unbudgeted: it is
    // polynomial and provides the degradation result itself.
    let mut best: Option<Vec<usize>> = {
        let mut chosen = Vec::new();
        let mut covered = vec![false; npts];
        let mut stuck = false;
        while covered.iter().any(|&c| !c) {
            let pick = (0..nprimes)
                .map(|i| {
                    let gain = (0..npts).filter(|&j| !covered[j] && cov[i][j]).count();
                    (i, gain)
                })
                .max_by_key(|&(_, g)| g)
                .filter(|&(_, g)| g > 0);
            let Some((bi, _)) = pick else {
                // No implicant covers a remaining point — only reachable if
                // prime generation returned an incomplete set, which it
                // never does for the on-set; bail out defensively.
                stuck = true;
                break;
            };
            chosen.push(bi);
            for j in 0..npts {
                if cov[bi][j] {
                    covered[j] = true;
                }
            }
        }
        if stuck {
            None
        } else {
            Some(chosen)
        }
    };
    if best.is_none() {
        return fallback();
    }

    fn search(
        cov: &[Vec<bool>],
        npts: usize,
        covered: &mut Vec<bool>,
        chosen: &mut Vec<usize>,
        newly: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
        budget: &Budget,
    ) {
        if !budget.tick("exact.node", 1) {
            return;
        }
        // Find the first uncovered point; none left means a complete cover.
        let Some(j) = (0..npts).find(|&j| !covered[j]) else {
            if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
                *best = Some(chosen.clone());
            }
            return;
        };
        // At least one more prime is needed; prune if that cannot improve.
        if let Some(b) = best {
            if chosen.len() + 1 >= b.len() {
                return;
            }
        }
        // Branch over every prime covering point j. `newly` is one flat
        // stack shared by the whole recursion: each frame remembers where
        // its span starts and unwinds back to that mark, so branching
        // allocates nothing.
        for (i, row) in cov.iter().enumerate() {
            if !row[j] {
                continue;
            }
            let mark = newly.len();
            for k in 0..npts {
                if !covered[k] && row[k] {
                    covered[k] = true;
                    newly.push(k);
                }
            }
            chosen.push(i);
            search(cov, npts, covered, chosen, newly, best, budget);
            chosen.pop();
            while newly.len() > mark {
                if let Some(k) = newly.pop() {
                    covered[k] = false;
                }
            }
            if budget.is_exhausted() {
                return;
            }
        }
    }

    let mut covered = vec![false; npts];
    let mut chosen = Vec::new();
    let mut newly = Vec::new();
    search(
        &cov, npts, &mut covered, &mut chosen, &mut newly, &mut best, budget,
    );

    let Some(chosen) = best else {
        return fallback();
    };
    let cover = Cover::from_cubes(dom, chosen.iter().map(|&i| primes.cubes()[i].clone()));
    if primes_complete && !budget.is_exhausted() {
        ExactOutcome::Minimum(cover)
    } else {
        ExactOutcome::Truncated(cover)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::equiv::implements;
    use crate::espresso::espresso;

    #[test]
    fn exact_matches_known_minimum() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let out = exact_minimize(&on, &Cover::empty(&dom), 100_000);
        assert!(out.is_minimum(), "budget should suffice: {out:?}");
        assert_eq!(out.cover().len(), 2);
        assert!(implements(out.cover(), &on, &Cover::empty(&dom)));
    }

    #[test]
    fn exact_lower_bounds_espresso() {
        let dom = Domain::binary(4);
        for text in [
            "1100 0110 0011 1001",
            "1111 0000 1010",
            "1--- -1-- --1- ---1",
        ] {
            let on = Cover::parse(&dom, text);
            let dc = Cover::empty(&dom);
            let exact = exact_minimize(&on, &dc, 1_000_000);
            let heur = espresso(&on, &dc);
            assert!(
                exact.cover().len() <= heur.len(),
                "exact {} > espresso {} on {text}",
                exact.cover().len(),
                heur.len()
            );
            assert!(implements(exact.cover(), &on, &dc));
        }
    }

    #[test]
    fn exact_uses_dont_cares() {
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "111 100");
        let dc = Cover::parse(&dom, "110 101");
        let out = exact_minimize(&on, &dc, 100_000);
        assert_eq!(out.cover().len(), 1);
    }

    #[test]
    fn empty_function_minimizes_to_empty() {
        let dom = Domain::binary(2);
        let out = exact_minimize(&Cover::empty(&dom), &Cover::empty(&dom), 10);
        assert!(out.cover().is_empty());
    }

    #[test]
    fn exhausted_budget_truncates_but_stays_valid() {
        let dom = Domain::binary(4);
        let on = Cover::parse(&dom, "1100 0110 0011 1001 1111 0101");
        let dc = Cover::empty(&dom);
        for limit in [0u64, 1, 3, 10, 50] {
            let budget = Budget::with_work_limit(limit);
            let out = exact_minimize_bounded(&on, &dc, &budget);
            assert_eq!(
                out.is_minimum(),
                !budget.is_exhausted(),
                "minimality claim must match budget state at limit {limit}"
            );
            assert!(
                implements(out.cover(), &on, &dc),
                "limit {limit} produced an invalid cover"
            );
        }
        // A tiny limit certainly cannot finish the two phases.
        let tiny = Budget::with_work_limit(3);
        assert!(!exact_minimize_bounded(&on, &dc, &tiny).is_minimum());
    }

    #[test]
    fn injected_fault_at_primes_truncates() {
        let _guard = crate::chaos::arm("exact.primes", 0);
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let budget = Budget::unlimited();
        let out = exact_minimize_bounded(&on, &Cover::empty(&dom), &budget);
        assert!(!out.is_minimum());
        assert!(implements(out.cover(), &on, &Cover::empty(&dom)));
    }

    #[test]
    fn injected_fault_at_search_node_truncates() {
        let _guard = crate::chaos::arm("exact.node", 0);
        let dom = Domain::binary(3);
        let on = Cover::parse(&dom, "110 111 011");
        let out = exact_minimize_bounded(&on, &Cover::empty(&dom), &Budget::unlimited());
        assert!(!out.is_minimum());
        assert!(implements(out.cover(), &on, &Cover::empty(&dom)));
    }

    #[test]
    fn oversized_domain_is_refused_gracefully() {
        let dom = Domain::binary(24);
        let on = Cover::parse(&dom, "1-----------------------");
        let out = exact_minimize_bounded(&on, &Cover::empty(&dom), &Budget::unlimited());
        assert!(!out.is_minimum());
        assert!(implements(out.cover(), &on, &Cover::empty(&dom)));
    }
}
