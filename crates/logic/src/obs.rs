//! Deterministic observability: hierarchical spans + monotonic counters.
//!
//! Every later performance PR needs to know *where the work goes* — how
//! many dichotomy evaluations a column took, how many cube sharps an
//! ESPRESSO pass burned, how often the refine loop accepted a flip. This
//! module records that as a tree of **spans** (one per pipeline phase:
//! extract → encode → per-column → refine → espresso), each carrying
//!
//! - a fixed registry of **monotonic counters** ([`Counter`]) bumped by
//!   the algorithms, and
//! - per-trigger-point **work totals** fed by [`crate::budget::Budget::tick`],
//!   so span "timing" is expressed in the same deterministic work units
//!   the budget clock is gated on.
//!
//! ## Determinism contract
//!
//! [`Trace::render`] never includes wall-clock time, and every counter is
//! bumped on the thread that *orchestrates* a phase (never inside
//! data-parallel evaluation workers), so the rendered span/counter tree is
//! byte-identical for any `--threads` setting. Wall time is collected only
//! when the trace is created with [`Trace::with_wall_clock`] and only
//! surfaces in [`Trace::to_json`].
//!
//! ## Recording model
//!
//! A [`Trace`] owns the root of the span tree and hands out [`Recorder`]
//! handles. A `Recorder` is either *disabled* (every operation is a no-op;
//! this is the [`Default`]) or scoped to one span. [`Recorder::span`]
//! opens a child span and returns a [`SpanGuard`] that closes it on drop —
//! including on unwind, which is how the chaos suite proves spans close on
//! every fault path.
//!
//! Deep call sites (the sharp operator, the containment prefilter) do not
//! take a recorder parameter; they report through a **thread-local current
//! recorder** installed by [`enter`] and bumped by [`count`]. Phase
//! drivers install their span's recorder on entry, so deep counts land in
//! the phase that caused them. [`Budget::tick`] routes its work through
//! the same thread-local (falling back to the recorder attached to the
//! budget), which makes counter conservation structural: every tick that
//! drains the shared work pool records the same amount into exactly one
//! span.
//!
//! ## Compiling it out
//!
//! With the `obs` cargo feature disabled (`--no-default-features`) this
//! module is replaced by an API-identical stub of zero-sized types and
//! empty `#[inline]` functions, so the tracing layer costs nothing — not
//! even the thread-local read.
//!
//! [`Budget::tick`]: crate::budget::Budget::tick

/// The fixed registry of monotonic counters.
///
/// Counters are cheap (`AtomicU64` slots indexed by discriminant) and
/// deliberately closed: adding one is a one-line enum change and keeps
/// renders/JSON stable across the whole workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Cube sharp (`#`) operations in `picola_logic::sharp`.
    CubeSharps,
    /// Main-loop iterations of the bounded ESPRESSO driver.
    EspressoIters,
    /// EXPAND operator invocations.
    ExpandCalls,
    /// REDUCE operator invocations.
    ReduceCalls,
    /// IRREDUNDANT operator invocations.
    IrredundantCalls,
    /// Ordered cube pairs examined by single-cube containment (`scc`).
    SccPairs,
    /// `scc` pairs rejected by the fold-OR signature prefilter alone
    /// (no full containment walk needed).
    SccPrefilterRejects,
    /// `u64` word operations in the packed constraint-matrix kernels
    /// (`pack_column` / `absorb_column`).
    WordOps,
    /// Encoding columns completed by the PICOLA column loop.
    ColumnsSolved,
    /// Guide constraints appended while classifying after a column.
    GuidesAdded,
    /// Candidate dichotomy gain evaluations inside `solve_column`.
    DichotomyEvals,
    /// Candidate flips evaluated by the PICOLA refine loop.
    RefineEvals,
    /// Refine flips accepted (first-improvement applications).
    RefineAccepts,
    /// Refine flips evaluated and rejected before an accept (or in a
    /// chunk that produced no improvement).
    RefineRejects,
    /// Refine candidate evaluations served entirely from reusable
    /// per-worker scratch (no per-candidate heap allocation) by the
    /// incremental code-table engine. Equals [`Counter::RefineEvals`] when
    /// the default engine runs; zero under the naive reference engine.
    RefineScratchReuse,
    /// Simulated-annealing moves accepted.
    AnnealAccepts,
    /// Simulated-annealing moves rejected.
    AnnealRejects,
    /// Chaos faults that fired at a budget trigger point.
    FaultsInjected,
    /// Worker panics caught and isolated by the encoder portfolio.
    PanicsCaught,
    /// Minimized-cube-count requests routed through the memo layer
    /// ([`crate::cache::MinimizeCache`]). Always equals
    /// [`Counter::MinimizeCacheHit`] + [`Counter::MinimizeCacheMiss`] —
    /// the conservation rule the golden-trace suite enforces.
    MinimizeCalls,
    /// Minimization requests answered from the memo without running the
    /// minimizer (and without charging any budget work).
    MinimizeCacheHit,
    /// Minimization requests that ran the minimizer (cache disabled, cold
    /// entry, or capacity reached).
    MinimizeCacheMiss,
    /// Minimizations that silently fell back from the flat engine to the
    /// legacy `Vec<Cube>` driver. Since the flat engine covers every domain
    /// (single- and multi-word, binary and multi-valued), **nothing bumps
    /// this counter**: it exists as a tripwire so any future eligibility
    /// regression fails the zero-fallback bench-tier test loudly instead of
    /// silently losing the flat engine's speedup. Explicitly *selecting*
    /// [`crate::CoverEngine::Legacy`] (differential oracle runs, A/B bench
    /// legs) is not a fallback and must not bump it either.
    LegacyFallback,
    /// Multi-word flat-engine minimizations routed through the kernel
    /// backend dispatcher (`picola_logic::simd`). Bumped once per
    /// dispatched run; single-word rungs and the binary fast path are
    /// pinned scalar and never dispatch. Always equals
    /// [`Counter::KernelWideCalls`] + [`Counter::KernelScalarCalls`] —
    /// the conservation rule the kernel suite enforces.
    KernelDispatches,
    /// Dispatched runs resolved to the wide (AVX2 or portable) backend.
    KernelWideCalls,
    /// Dispatched runs resolved to the scalar backend.
    KernelScalarCalls,
    /// Branching decisions made by the CDCL SAT core
    /// ([`crate::sat::Solver`]). Together with [`Counter::SatConflicts`]
    /// this equals the work the solver charges to its budget at the
    /// `sat.conflict` trigger point — the conservation rule for SAT runs.
    SatDecisions,
    /// Implied assignments produced by unit propagation in the SAT core.
    SatPropagations,
    /// Conflicts analyzed (and, when the clause is non-trivial, learned
    /// from) by the SAT core.
    SatConflicts,
}

impl Counter {
    /// Every counter, in render order.
    pub const ALL: &'static [Counter] = &[
        Counter::CubeSharps,
        Counter::EspressoIters,
        Counter::ExpandCalls,
        Counter::ReduceCalls,
        Counter::IrredundantCalls,
        Counter::SccPairs,
        Counter::SccPrefilterRejects,
        Counter::WordOps,
        Counter::ColumnsSolved,
        Counter::GuidesAdded,
        Counter::DichotomyEvals,
        Counter::RefineEvals,
        Counter::RefineAccepts,
        Counter::RefineRejects,
        Counter::RefineScratchReuse,
        Counter::AnnealAccepts,
        Counter::AnnealRejects,
        Counter::FaultsInjected,
        Counter::PanicsCaught,
        Counter::MinimizeCalls,
        Counter::MinimizeCacheHit,
        Counter::MinimizeCacheMiss,
        Counter::LegacyFallback,
        Counter::KernelDispatches,
        Counter::KernelWideCalls,
        Counter::KernelScalarCalls,
        Counter::SatDecisions,
        Counter::SatPropagations,
        Counter::SatConflicts,
    ];

    /// `true` for counters whose totals depend on which kernel backend a
    /// run resolved to. These are excluded from span snapshots (and hence
    /// from [`Trace::render`] / [`Trace::to_json`] and golden traces) so
    /// traces stay byte-identical across `PICOLA_SIMD=scalar|wide`; read
    /// them through [`Trace::counter_total`], which bypasses snapshots.
    pub fn backend_scoped(self) -> bool {
        matches!(
            self,
            Counter::KernelDispatches | Counter::KernelWideCalls | Counter::KernelScalarCalls
        )
    }

    /// The stable snake_case name used in renders and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CubeSharps => "cube_sharps",
            Counter::EspressoIters => "espresso_iters",
            Counter::ExpandCalls => "expand_calls",
            Counter::ReduceCalls => "reduce_calls",
            Counter::IrredundantCalls => "irredundant_calls",
            Counter::SccPairs => "scc_pairs",
            Counter::SccPrefilterRejects => "scc_prefilter_rejects",
            Counter::WordOps => "word_ops",
            Counter::ColumnsSolved => "columns_solved",
            Counter::GuidesAdded => "guides_added",
            Counter::DichotomyEvals => "dichotomy_evals",
            Counter::RefineEvals => "refine_evals",
            Counter::RefineAccepts => "refine_accepts",
            Counter::RefineRejects => "refine_rejects",
            Counter::RefineScratchReuse => "refine_scratch_reuse",
            Counter::AnnealAccepts => "anneal_accepts",
            Counter::AnnealRejects => "anneal_rejects",
            Counter::FaultsInjected => "faults_injected",
            Counter::PanicsCaught => "panics_caught",
            Counter::MinimizeCalls => "minimize_calls",
            Counter::MinimizeCacheHit => "minimize_cache_hit",
            Counter::MinimizeCacheMiss => "minimize_cache_miss",
            Counter::LegacyFallback => "legacy_fallback",
            Counter::KernelDispatches => "kernel_dispatches",
            Counter::KernelWideCalls => "kernel_wide_calls",
            Counter::KernelScalarCalls => "kernel_scalar_calls",
            Counter::SatDecisions => "sat_decisions",
            Counter::SatPropagations => "sat_propagations",
            Counter::SatConflicts => "sat_conflicts",
        }
    }
}

/// Number of counter slots per span.
#[cfg(feature = "obs")]
const NUM_COUNTERS: usize = Counter::ALL.len();

/// An immutable snapshot of one span, produced by [`Trace::snapshot`].
///
/// `work` and `counters` list only non-zero entries, in registry order, so
/// snapshots (and everything rendered from them) are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Span name (`"picola"`, `"column.3"`, `"member.anneal"`, ...).
    pub name: String,
    /// Wall time in nanoseconds, present only for traces created with
    /// [`Trace::with_wall_clock`] (and excluded from [`Trace::render`]).
    pub wall_ns: Option<u64>,
    /// Non-zero work totals per budget trigger point. Points outside the
    /// chaos registry (tests, examples) aggregate under `"other"`.
    pub work: Vec<(&'static str, u64)>,
    /// Non-zero counters.
    pub counters: Vec<(&'static str, u64)>,
    /// Child spans in creation order.
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// An empty snapshot with the given name (what the no-op stub returns).
    pub fn empty(name: &str) -> SpanSnapshot {
        SpanSnapshot {
            name: name.to_owned(),
            wall_ns: None,
            work: Vec::new(),
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Total work units recorded in this span and every descendant.
    pub fn total_work(&self) -> u64 {
        let own: u64 = self.work.iter().map(|&(_, v)| v).sum();
        own + self.children.iter().map(SpanSnapshot::total_work).sum::<u64>()
    }

    /// Total of one counter over this span and every descendant.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        let own = self
            .counters
            .iter()
            .find(|&&(n, _)| n == counter.name())
            .map_or(0, |&(_, v)| v);
        own + self
            .children
            .iter()
            .map(|c| c.counter_total(counter))
            .sum::<u64>()
    }

    /// This span (and descendants) as indented deterministic text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    /// Renders this span (and descendants) as indented deterministic text.
    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if !self.work.is_empty() {
            out.push_str(" work[");
            for (i, (point, v)) in self.work.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(point);
                out.push('=');
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        if !self.counters.is_empty() {
            out.push_str(" counters[");
            for (i, (name, v)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(name);
                out.push('=');
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }

    /// Serializes this span (and descendants) as a JSON object.
    fn json_into(&self, out: &mut String) {
        out.push_str("{\"name\":\"");
        json_escape_into(&self.name, out);
        out.push('"');
        if let Some(ns) = self.wall_ns {
            out.push_str(&format!(",\"wall_ms\":{:.3}", ns as f64 / 1e6));
        }
        out.push_str(",\"work\":{");
        for (i, (point, v)) in self.work.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(point, out);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.json_into(out);
        }
        out.push_str("]}");
    }

    /// This span as a standalone JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }
}

fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{Counter, SpanSnapshot, NUM_COUNTERS};
    use crate::chaos;
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    /// One work slot per chaos trigger point, plus a trailing `"other"`
    /// slot for points outside the registry (tests, doc examples).
    const NUM_WORK_SLOTS: usize = chaos::TRIGGER_POINTS.len() + 1;

    fn work_slot(point: &str) -> usize {
        chaos::TRIGGER_POINTS
            .iter()
            .position(|&p| p == point)
            .unwrap_or(chaos::TRIGGER_POINTS.len())
    }

    fn work_slot_name(slot: usize) -> &'static str {
        chaos::TRIGGER_POINTS.get(slot).copied().unwrap_or("other")
    }

    /// Shared mutable state of one span in the tree.
    #[derive(Debug)]
    struct SpanCell {
        name: String,
        /// `true` between guard creation and guard drop. The root cell is
        /// never "open": it is the container, not a phase.
        open: AtomicBool,
        /// Whether drops should read the wall clock (trace-wide flag).
        wall: bool,
        /// Accumulated wall nanoseconds over all open/close cycles.
        wall_ns: AtomicU64,
        counters: [AtomicU64; NUM_COUNTERS],
        work: [AtomicU64; NUM_WORK_SLOTS],
        children: Mutex<Vec<Arc<SpanCell>>>,
    }

    impl SpanCell {
        fn new(name: &str, wall: bool, open: bool) -> SpanCell {
            SpanCell {
                name: name.to_owned(),
                open: AtomicBool::new(open),
                wall,
                wall_ns: AtomicU64::new(0),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                work: std::array::from_fn(|_| AtomicU64::new(0)),
                children: Mutex::new(Vec::new()),
            }
        }

        fn snapshot(&self) -> SpanSnapshot {
            let work = self
                .work
                .iter()
                .enumerate()
                .filter_map(|(slot, v)| {
                    let v = v.load(Ordering::Relaxed);
                    (v != 0).then(|| (work_slot_name(slot), v))
                })
                .collect();
            let counters = Counter::ALL
                .iter()
                .filter(|c| !c.backend_scoped())
                .filter_map(|&c| {
                    let v = self.counters[c as usize].load(Ordering::Relaxed);
                    (v != 0).then(|| (c.name(), v))
                })
                .collect();
            let children = match self.children.lock() {
                Ok(kids) => kids.iter().map(|k| k.snapshot()).collect(),
                Err(_) => Vec::new(),
            };
            SpanSnapshot {
                name: self.name.clone(),
                wall_ns: self.wall.then(|| self.wall_ns.load(Ordering::Relaxed)),
                work,
                counters,
                children,
            }
        }

        /// Total of one counter over this cell and every descendant, read
        /// straight from the atomics. Unlike going through [`snapshot`],
        /// this also sees backend-scoped counters, which snapshots omit.
        ///
        /// [`snapshot`]: SpanCell::snapshot
        fn counter_total(&self, counter: Counter) -> u64 {
            let own = self.counters[counter as usize].load(Ordering::Relaxed);
            let kids: u64 = match self.children.lock() {
                Ok(kids) => kids.iter().map(|k| k.counter_total(counter)).sum(),
                Err(_) => 0,
            };
            own + kids
        }

        fn open_spans(&self) -> usize {
            let own = usize::from(self.open.load(Ordering::Relaxed));
            let kids = match self.children.lock() {
                Ok(kids) => kids.iter().map(|k| k.open_spans()).sum(),
                Err(_) => 0,
            };
            own + kids
        }
    }

    /// The owner of a span tree. See the module docs for the model.
    #[derive(Debug)]
    pub struct Trace {
        root: Arc<SpanCell>,
        start: Option<Instant>,
    }

    impl Default for Trace {
        fn default() -> Self {
            Trace::new()
        }
    }

    impl Trace {
        /// A deterministic trace: work units and counters only, no wall
        /// clock anywhere. Use this in tests and anywhere renders are
        /// compared byte-for-byte.
        pub fn new() -> Trace {
            Trace {
                root: Arc::new(SpanCell::new("trace", false, false)),
                start: None,
            }
        }

        /// A trace that additionally samples wall time per span (surfaced
        /// only by [`Trace::to_json`], never by [`Trace::render`]).
        pub fn with_wall_clock() -> Trace {
            Trace {
                root: Arc::new(SpanCell::new("trace", true, false)),
                start: Some(Instant::now()),
            }
        }

        /// An enabled recorder scoped to the root span. Attach it to a
        /// [`crate::budget::Budget`] and/or pass it to phase drivers.
        pub fn recorder(&self) -> Recorder {
            Recorder {
                scope: Some(Arc::clone(&self.root)),
            }
        }

        /// Snapshots the whole tree (root included).
        pub fn snapshot(&self) -> SpanSnapshot {
            let mut snap = self.root.snapshot();
            if let Some(start) = self.start {
                snap.wall_ns = Some(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            snap
        }

        /// Deterministic indented text render of the span/counter tree.
        pub fn render(&self) -> String {
            let mut snap = self.snapshot();
            strip_wall(&mut snap);
            let mut out = String::new();
            snap.render_into(0, &mut out);
            out
        }

        /// The whole tree as a JSON object (includes `wall_ms` fields when
        /// the trace was created with [`Trace::with_wall_clock`]).
        pub fn to_json(&self) -> String {
            self.snapshot().to_json()
        }

        /// Total work units recorded across every span.
        pub fn total_work(&self) -> u64 {
            self.snapshot().total_work()
        }

        /// Total of one counter across every span. Reads the span cells
        /// directly, so — unlike [`Trace::snapshot`] — it also observes
        /// backend-scoped counters ([`Counter::backend_scoped`]).
        pub fn counter_total(&self, counter: Counter) -> u64 {
            self.root.counter_total(counter)
        }

        /// Number of spans currently open (guards not yet dropped). Zero
        /// once every phase has exited — including via unwind or a chaos
        /// fault — which the conservation suite asserts.
        pub fn open_spans(&self) -> usize {
            self.root.open_spans()
        }
    }

    fn strip_wall(snap: &mut SpanSnapshot) {
        snap.wall_ns = None;
        for child in &mut snap.children {
            strip_wall(child);
        }
    }

    /// A handle that records into one span — or nothing, when disabled.
    ///
    /// Cloning is cheap (an `Option<Arc>`), and the [`Default`] recorder
    /// is disabled, so plumbing a `Recorder` through existing structs
    /// costs nothing until a [`Trace`] hands out a live one.
    #[derive(Debug, Clone, Default)]
    pub struct Recorder {
        scope: Option<Arc<SpanCell>>,
    }

    impl Recorder {
        /// The no-op recorder.
        pub fn disabled() -> Recorder {
            Recorder { scope: None }
        }

        /// `true` when this recorder writes into a live trace.
        pub fn is_enabled(&self) -> bool {
            self.scope.is_some()
        }

        /// Adds `n` to `counter` on this recorder's span.
        pub fn add(&self, counter: Counter, n: u64) {
            if n == 0 {
                return;
            }
            if let Some(cell) = &self.scope {
                cell.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
            }
        }

        /// Records `amount` budget work units at `point` on this span.
        pub fn record_work(&self, point: &str, amount: u64) {
            if amount == 0 {
                return;
            }
            if let Some(cell) = &self.scope {
                cell.work[work_slot(point)].fetch_add(amount, Ordering::Relaxed);
            }
        }

        /// Opens a child span named `name`; the guard closes it on drop.
        /// On a disabled recorder this returns an inert guard.
        pub fn span(&self, name: &str) -> SpanGuard {
            let Some(parent) = &self.scope else {
                return SpanGuard {
                    cell: None,
                    start: None,
                };
            };
            let cell = Arc::new(SpanCell::new(name, parent.wall, true));
            if let Ok(mut kids) = parent.children.lock() {
                kids.push(Arc::clone(&cell));
            }
            let start = cell.wall.then(Instant::now);
            SpanGuard {
                cell: Some(cell),
                start,
            }
        }
    }

    /// Closes its span on drop (normal exit, early return, or unwind).
    #[derive(Debug)]
    pub struct SpanGuard {
        cell: Option<Arc<SpanCell>>,
        start: Option<Instant>,
    }

    impl SpanGuard {
        /// A recorder scoped to this guard's span (disabled for inert
        /// guards). Hand it to child phases or [`enter`] it.
        pub fn recorder(&self) -> Recorder {
            Recorder {
                scope: self.cell.clone(),
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some(cell) = &self.cell {
                if let Some(start) = self.start {
                    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    cell.wall_ns.fetch_add(ns, Ordering::Relaxed);
                }
                cell.open.store(false, Ordering::Relaxed);
            }
        }
    }

    thread_local! {
        /// Fast-path flag mirroring whether `TL_CURRENT` is enabled.
        static TL_ENABLED: Cell<bool> = const { Cell::new(false) };
        static TL_CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    }

    /// Restores the previously installed current recorder on drop.
    #[derive(Debug)]
    pub struct CurrentGuard {
        prev: Option<Recorder>,
        prev_enabled: bool,
    }

    impl Drop for CurrentGuard {
        fn drop(&mut self) {
            TL_ENABLED.with(|e| e.set(self.prev_enabled));
            let prev = self.prev.take();
            TL_CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }

    /// Installs `recorder` as this thread's current recorder until the
    /// returned guard drops. Phase drivers call this right after opening
    /// their span so deep [`count`]s and budget ticks attribute to it.
    pub fn enter(recorder: Recorder) -> CurrentGuard {
        let prev_enabled = TL_ENABLED.with(|e| e.replace(recorder.is_enabled()));
        let prev = TL_CURRENT.with(|c| c.borrow_mut().replace(recorder));
        CurrentGuard { prev, prev_enabled }
    }

    /// The current recorder installed on this thread (disabled if none).
    pub fn current() -> Recorder {
        if !TL_ENABLED.with(Cell::get) {
            return Recorder::disabled();
        }
        TL_CURRENT.with(|c| c.borrow().clone().unwrap_or_default())
    }

    /// The thread's current recorder if enabled, else a clone of
    /// `fallback`. The standard way for a phase to find its parent scope:
    /// the caller's entered span wins over the budget-attached recorder.
    pub fn current_or(fallback: &Recorder) -> Recorder {
        let cur = current();
        if cur.is_enabled() {
            cur
        } else {
            fallback.clone()
        }
    }

    /// Adds `n` to `counter` on the thread's current recorder (no-op when
    /// none is installed). The deep-call-site counting primitive.
    pub fn count(counter: Counter, n: u64) {
        if n == 0 || !TL_ENABLED.with(Cell::get) {
            return;
        }
        TL_CURRENT.with(|c| {
            if let Some(r) = &*c.borrow() {
                r.add(counter, n);
            }
        });
    }

    /// Like [`count`], but falls back to `fallback` when no current
    /// recorder is installed. Used by [`crate::budget::Budget::tick`].
    pub fn count_scoped(fallback: &Recorder, counter: Counter, n: u64) {
        if TL_ENABLED.with(Cell::get) {
            count(counter, n);
        } else {
            fallback.add(counter, n);
        }
    }

    /// Records budget work on the thread's current recorder, falling back
    /// to `fallback` (the budget-attached recorder). Exactly one span
    /// receives each tick's amount, which is what makes trace totals equal
    /// the budget pool by construction.
    ///
    /// Work from an *untraced* budget (disabled `fallback`) is never
    /// recorded, even when a span is active on this thread: such ticks
    /// drain a pool no trace observes, so attributing them to the current
    /// span would break the trace-total = pool-drained conservation law.
    pub fn record_work_scoped(fallback: &Recorder, point: &str, amount: u64) {
        if !fallback.is_enabled() {
            return;
        }
        if TL_ENABLED.with(Cell::get) {
            TL_CURRENT.with(|c| {
                if let Some(r) = &*c.borrow() {
                    r.record_work(point, amount);
                }
            });
        } else {
            fallback.record_work(point, amount);
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    //! API-identical no-op stub: every type is zero-sized and every
    //! function inlines to nothing, so disabling the `obs` feature
    //! compiles the tracing layer out of the binary entirely.

    use super::{Counter, SpanSnapshot};

    /// No-op stand-in for the real `Trace` (feature `obs` disabled).
    #[derive(Debug, Default)]
    pub struct Trace;

    impl Trace {
        /// A trace that records nothing.
        pub fn new() -> Trace {
            Trace
        }

        /// Identical to [`Trace::new`] in the stub.
        pub fn with_wall_clock() -> Trace {
            Trace
        }

        /// A disabled recorder.
        pub fn recorder(&self) -> Recorder {
            Recorder
        }

        /// An empty root snapshot.
        pub fn snapshot(&self) -> SpanSnapshot {
            SpanSnapshot::empty("trace")
        }

        /// The render of an empty tree.
        pub fn render(&self) -> String {
            "trace\n".to_owned()
        }

        /// The JSON of an empty tree.
        pub fn to_json(&self) -> String {
            self.snapshot().to_json()
        }

        /// Always zero.
        pub fn total_work(&self) -> u64 {
            0
        }

        /// Always zero.
        pub fn counter_total(&self, _counter: Counter) -> u64 {
            0
        }

        /// Always zero.
        pub fn open_spans(&self) -> usize {
            0
        }
    }

    /// No-op stand-in recorder (feature `obs` disabled). Deliberately not
    /// `Copy`: call sites then clone exactly as they do with the real
    /// recorder, keeping both builds lint-clean.
    #[derive(Debug, Clone, Default)]
    pub struct Recorder;

    impl Recorder {
        /// The (only) disabled recorder.
        #[inline(always)]
        pub fn disabled() -> Recorder {
            Recorder
        }

        /// Always `false`.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// Does nothing.
        #[inline(always)]
        pub fn add(&self, _counter: Counter, _n: u64) {}

        /// Does nothing.
        #[inline(always)]
        pub fn record_work(&self, _point: &str, _amount: u64) {}

        /// Returns an inert guard.
        #[inline(always)]
        pub fn span(&self, _name: &str) -> SpanGuard {
            SpanGuard
        }
    }

    /// Inert span guard (feature `obs` disabled).
    #[derive(Debug)]
    pub struct SpanGuard;

    impl SpanGuard {
        /// A disabled recorder.
        #[inline(always)]
        pub fn recorder(&self) -> Recorder {
            Recorder
        }
    }

    /// Inert current-recorder guard (feature `obs` disabled).
    #[derive(Debug)]
    pub struct CurrentGuard;

    /// Does nothing; returns an inert guard.
    #[inline(always)]
    pub fn enter(_recorder: Recorder) -> CurrentGuard {
        CurrentGuard
    }

    /// Always disabled.
    #[inline(always)]
    pub fn current() -> Recorder {
        Recorder
    }

    /// Always disabled.
    #[inline(always)]
    pub fn current_or(_fallback: &Recorder) -> Recorder {
        Recorder
    }

    /// Does nothing.
    #[inline(always)]
    pub fn count(_counter: Counter, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn count_scoped(_fallback: &Recorder, _counter: Counter, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn record_work_scoped(_fallback: &Recorder, _point: &str, _amount: u64) {}
}

pub use imp::{
    count, count_scoped, current, current_or, enter, record_work_scoped, CurrentGuard, Recorder,
    SpanGuard, Trace,
};

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.add(Counter::CubeSharps, 5);
        r.record_work("espresso.iter", 5);
        let g = r.span("phantom");
        assert!(!g.recorder().is_enabled());
    }

    #[test]
    fn spans_nest_and_close() {
        let trace = Trace::new();
        let rec = trace.recorder();
        assert!(rec.is_enabled());
        {
            let outer = rec.span("outer");
            outer.recorder().add(Counter::ColumnsSolved, 2);
            {
                let inner = outer.recorder().span("inner");
                inner.recorder().record_work("picola.column", 7);
                assert_eq!(trace.open_spans(), 2);
            }
            assert_eq!(trace.open_spans(), 1);
        }
        assert_eq!(trace.open_spans(), 0);
        assert_eq!(trace.total_work(), 7);
        assert_eq!(trace.counter_total(Counter::ColumnsSolved), 2);
        let render = trace.render();
        assert_eq!(
            render,
            "trace\n  outer counters[columns_solved=2]\n    inner work[picola.column=7]\n"
        );
    }

    #[test]
    fn unknown_points_land_in_other() {
        let trace = Trace::new();
        trace.recorder().record_work("test.step", 3);
        let snap = trace.snapshot();
        assert_eq!(snap.work, vec![("other", 3)]);
        assert_eq!(trace.total_work(), 3);
    }

    #[test]
    fn thread_local_current_routes_counts() {
        let trace = Trace::new();
        let span = trace.recorder().span("phase");
        {
            let _cur = enter(span.recorder());
            count(Counter::CubeSharps, 4);
            // An untraced budget's work is dropped even inside a span …
            record_work_scoped(&Recorder::disabled(), "espresso.iter", 7);
            // … while a traced budget's work lands on the current span.
            record_work_scoped(&trace.recorder(), "espresso.iter", 2);
            assert!(current().is_enabled());
        }
        assert!(!current().is_enabled());
        count(Counter::CubeSharps, 100); // no current installed: dropped
        drop(span);
        assert_eq!(trace.counter_total(Counter::CubeSharps), 4);
        assert_eq!(trace.total_work(), 2);
    }

    #[test]
    fn current_guard_restores_previous() {
        let trace = Trace::new();
        let a = trace.recorder().span("a");
        let b = trace.recorder().span("b");
        let _cur_a = enter(a.recorder());
        {
            let _cur_b = enter(b.recorder());
            count(Counter::GuidesAdded, 1);
        }
        count(Counter::GuidesAdded, 1);
        drop(_cur_a);
        let snap = trace.snapshot();
        assert_eq!(snap.children.len(), 2);
        assert_eq!(snap.children[0].counter_total(Counter::GuidesAdded), 1);
        assert_eq!(snap.children[1].counter_total(Counter::GuidesAdded), 1);
    }

    #[test]
    fn render_excludes_wall_time_and_json_includes_it() {
        let trace = Trace::with_wall_clock();
        {
            let _span = trace.recorder().span("timed");
        }
        assert!(!trace.render().contains("wall"));
        assert!(trace.to_json().contains("\"wall_ms\":"));
        let plain = Trace::new();
        {
            let _span = plain.recorder().span("timed");
        }
        assert!(!plain.to_json().contains("wall_ms"));
    }

    #[test]
    fn json_shape_is_stable() {
        let trace = Trace::new();
        {
            let s = trace.recorder().span("phase");
            s.recorder().add(Counter::RefineAccepts, 1);
            s.recorder().record_work("picola.refine", 5);
        }
        assert_eq!(
            trace.to_json(),
            "{\"name\":\"trace\",\"work\":{},\"counters\":{},\"children\":[\
             {\"name\":\"phase\",\"work\":{\"picola.refine\":5},\
             \"counters\":{\"refine_accepts\":1},\"children\":[]}]}"
        );
    }

    #[test]
    fn backend_scoped_counters_bypass_snapshots() {
        let trace = Trace::new();
        {
            let span = trace.recorder().span("minimize");
            span.recorder().add(Counter::KernelDispatches, 3);
            span.recorder().add(Counter::KernelWideCalls, 2);
            span.recorder().add(Counter::KernelScalarCalls, 1);
            span.recorder().add(Counter::MinimizeCalls, 3);
        }
        // Totals are visible through the cell-walking reader …
        assert_eq!(trace.counter_total(Counter::KernelDispatches), 3);
        assert_eq!(trace.counter_total(Counter::KernelWideCalls), 2);
        assert_eq!(trace.counter_total(Counter::KernelScalarCalls), 1);
        // … but never leak into snapshots, renders, or JSON, which must
        // stay byte-identical across kernel backends.
        let render = trace.render();
        assert!(!render.contains("kernel_"));
        assert!(render.contains("minimize_calls=3"));
        assert!(!trace.to_json().contains("kernel_"));
        assert_eq!(trace.snapshot().counter_total(Counter::KernelDispatches), 0);
    }

    #[test]
    fn counts_are_thread_safe() {
        let trace = Trace::new();
        let rec = trace.recorder();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        rec.add(Counter::WordOps, 1);
                        rec.record_work("enc.eval", 1);
                    }
                });
            }
        });
        assert_eq!(trace.counter_total(Counter::WordOps), 4000);
        assert_eq!(trace.total_work(), 4000);
    }
}
