//! Compact binary serialization primitives for persistent artifacts.
//!
//! JSON served the bench/daemon paths fine while corpora were a dozen
//! instances; the huge streaming tier (thousands of instances, persistent
//! result records) needs the same discipline the bounded-length coding
//! literature applies to symbol/length data: fixed magic + version header,
//! LEB128 varints for the integers (almost all of which are tiny), and
//! length-prefixed byte runs — no text, no per-field names.
//!
//! This module owns only the *primitives*: a bounds-checked [`ByteReader`]
//! that can never panic or over-read on hostile input (the same hardening
//! bar as the PR 1 KISS2/PLA parsers — every decode error is a structured
//! [`BinioError`] carrying the byte offset), the [`ByteWriter`] that mirrors
//! it, the self-describing [`Header`], and the FNV-1a digest used to
//! content-address canonical artifact bytes. Record layouts live with their
//! owners (`picola_core::store` for result records, `picola_bench::artifact`
//! for instances and bench records); the byte-layout tables are in
//! DESIGN.md §18.

use std::fmt;

/// Magic bytes opening every picola binary artifact.
pub const MAGIC: [u8; 4] = *b"PCLA";

/// Current artifact format version. Bump on any layout change; readers
/// reject versions they do not know instead of misparsing.
pub const FORMAT_VERSION: u16 = 1;

/// Hard cap on any single length-prefixed run. Corrupt length prefixes
/// must fail fast, not drive a multi-gigabyte allocation.
pub const MAX_RUN_LEN: u64 = 64 * 1024 * 1024;

/// A structured decode failure: what went wrong and where.
///
/// Decoding never panics — truncated, oversized, or corrupt inputs all
/// land here, and the offset points at the field that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinioError {
    /// Byte offset at which the failing read started.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl BinioError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        BinioError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for BinioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for BinioError {}

/// The self-describing header opening every artifact: magic, format
/// version, and a record-kind tag so a file can never be decoded as the
/// wrong kind silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Format version the artifact was written with.
    pub version: u16,
    /// Record-kind tag (see the `KIND_*` constants of each owner module).
    pub kind: u8,
}

/// Appends binary primitives to a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// A writer pre-sized for roughly `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Writes the artifact header for `kind` at the current position.
    pub fn header(&mut self, kind: u8) {
        self.buf.extend_from_slice(&MAGIC);
        self.buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        self.buf.push(kind);
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u64` as an LEB128 varint (1 byte for values < 128).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a length-prefixed byte run.
    pub fn bytes(&mut self, data: &[u8]) {
        self.varint(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// The bytes written so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads binary primitives from a byte slice with full bounds checking.
///
/// Every method returns `Err` instead of panicking on truncated or corrupt
/// input; the reader position only advances on success.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`, positioned at the start.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    /// `true` when the reader has consumed every byte.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Reads and validates the artifact header, requiring `kind`.
    ///
    /// # Errors
    ///
    /// Truncation, wrong magic, an unknown format version, or a
    /// mismatched record kind.
    pub fn header(&mut self, kind: u8) -> Result<Header, BinioError> {
        let start = self.pos;
        let magic = self.take(4)?;
        if magic != MAGIC {
            return Err(BinioError::new(start, "bad magic (not a picola artifact)"));
        }
        let vs = self.take(2)?;
        let version = u16::from_le_bytes([vs[0], vs[1]]);
        if version == 0 || version > FORMAT_VERSION {
            return Err(BinioError::new(
                start + 4,
                format!("unsupported format version {version} (max {FORMAT_VERSION})"),
            ));
        }
        let got = self.u8()?;
        if got != kind {
            return Err(BinioError::new(
                start + 6,
                format!("record kind {got} where kind {kind} was required"),
            ));
        }
        Ok(Header { version, kind: got })
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Truncated input.
    pub fn u8(&mut self) -> Result<u8, BinioError> {
        let b = self.take(1)?;
        Ok(b[0])
    }

    /// Reads an LEB128 varint into a `u64`.
    ///
    /// # Errors
    ///
    /// Truncated input or a varint longer than 10 bytes / overflowing 64
    /// bits (corrupt, by construction of the writer).
    pub fn varint(&mut self) -> Result<u64, BinioError> {
        let start = self.pos;
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self
                .take(1)
                .map_err(|_| BinioError::new(start, "truncated varint"))?[0];
            let low = u64::from(byte & 0x7f);
            if shift >= 63 && low > 1 {
                return Err(BinioError::new(start, "varint overflows 64 bits"));
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(BinioError::new(start, "varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a varint and checks it against an inclusive cap — the guard
    /// every count/length field goes through so corrupt prefixes cannot
    /// drive huge allocations.
    ///
    /// # Errors
    ///
    /// Truncation, corruption, or a value above `cap`.
    pub fn varint_capped(&mut self, cap: u64, what: &str) -> Result<u64, BinioError> {
        let start = self.pos;
        let v = self.varint()?;
        if v > cap {
            return Err(BinioError::new(
                start,
                format!("{what} {v} exceeds the cap of {cap}"),
            ));
        }
        Ok(v)
    }

    /// Reads a length-prefixed byte run (length capped at [`MAX_RUN_LEN`]
    /// and at the bytes actually remaining).
    ///
    /// # Errors
    ///
    /// Truncation or a corrupt length prefix.
    pub fn bytes(&mut self) -> Result<&'a [u8], BinioError> {
        let start = self.pos;
        let len = self.varint_capped(MAX_RUN_LEN, "byte-run length")?;
        let len = usize::try_from(len)
            .map_err(|_| BinioError::new(start, "byte-run length does not fit usize"))?;
        if len > self.remaining() {
            return Err(BinioError::new(
                start,
                format!("byte run of {len} bytes with only {} remaining", self.remaining()),
            ));
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Truncation, a corrupt length prefix, or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, BinioError> {
        let start = self.pos;
        let raw = self.bytes()?;
        std::str::from_utf8(raw).map_err(|_| BinioError::new(start, "byte run is not UTF-8"))
    }

    /// Requires that every byte has been consumed — trailing garbage on a
    /// record is corruption, not padding.
    ///
    /// # Errors
    ///
    /// Unconsumed trailing bytes.
    pub fn finish(&self) -> Result<(), BinioError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(BinioError::new(
                self.pos,
                format!("{} trailing bytes after the record", self.remaining()),
            ))
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], BinioError> {
        let end = self.pos.checked_add(len).ok_or_else(|| {
            BinioError::new(self.pos, "read range overflows usize")
        })?;
        if end > self.data.len() {
            return Err(BinioError::new(
                self.pos,
                format!("truncated input ({} bytes needed, {} remain)", len, self.remaining()),
            ));
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher — the digest behind content addressing
/// in the on-disk result store (same constants as the shard picker of
/// [`crate::cache::GlobalMinimizeCache`]).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64::default()
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// FNV-1a 64-bit digest of `bytes` in one call.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn varints_round_trip_across_the_range() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.varint(v);
        }
        let mut r = ByteReader::new(w.as_slice());
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn header_rejects_bad_magic_version_and_kind() {
        let mut w = ByteWriter::new();
        w.header(7);
        let good = w.into_bytes();
        assert!(ByteReader::new(&good).header(7).is_ok());
        assert!(ByteReader::new(&good).header(8).is_err(), "kind mismatch");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(ByteReader::new(&bad_magic).header(7).is_err());

        let mut bad_version = good.clone();
        bad_version[4] = 0xff;
        bad_version[5] = 0xff;
        assert!(ByteReader::new(&bad_version).header(7).is_err());

        assert!(ByteReader::new(&good[..5]).header(7).is_err(), "truncated");
    }

    #[test]
    fn truncated_and_corrupt_runs_are_errors_not_panics() {
        let mut w = ByteWriter::new();
        w.bytes(b"hello world");
        let bytes = w.into_bytes();
        // Every prefix of a valid record must fail cleanly.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let _ = r.bytes(); // must not panic
        }
        // A length prefix pointing past the end fails with an offset.
        let mut w = ByteWriter::new();
        w.varint(1_000);
        w.u8(1);
        let mut r = ByteReader::new(w.as_slice());
        let err = r.bytes().unwrap_err();
        assert_eq!(err.offset, 0);
        // An absurd length fails the cap before any allocation.
        let mut w = ByteWriter::new();
        w.varint(u64::MAX / 2);
        let mut r = ByteReader::new(w.as_slice());
        assert!(r.bytes().is_err());
    }

    #[test]
    fn overlong_varints_are_corrupt() {
        // 11 continuation bytes can never come from the writer.
        let bytes = [0x80u8; 11];
        assert!(ByteReader::new(&bytes).varint().is_err());
        // 10 bytes whose top byte overflows 64 bits.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x7f;
        assert!(ByteReader::new(&overflow).varint().is_err());
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut w = ByteWriter::new();
        w.str("gen-07");
        w.str("");
        let mut r = ByteReader::new(w.as_slice());
        assert_eq!(r.str().unwrap(), "gen-07");
        assert_eq!(r.str().unwrap(), "");
        r.finish().unwrap();

        let mut w = ByteWriter::new();
        w.bytes(&[0xff, 0xfe]);
        assert!(ByteReader::new(w.as_slice()).str().is_err());
    }

    #[test]
    fn finish_rejects_trailing_garbage() {
        let mut w = ByteWriter::new();
        w.varint(5);
        w.u8(9);
        let mut r = ByteReader::new(w.as_slice());
        assert_eq!(r.varint().unwrap(), 5);
        assert!(r.finish().is_err());
    }

    #[test]
    fn fnv_digest_is_stable_and_streams() {
        // Known FNV-1a vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"hel");
        h.update(b"lo");
        assert_eq!(h.finish(), fnv1a64(b"hello"));
    }
}
