//! # picola-sat — SAT-backed exact face-constraint encoding
//!
//! An *independent* exact path for the encoding problem: where the rest of
//! the workspace shares cube algebra (ESPRESSO, Quine–McCluskey, the flat
//! engine), this crate reduces "does an injective encoding with total
//! Table I cost ≤ K exist?" to CNF (see [`picola_logic::sat`]) and decides
//! it with the self-contained CDCL core. Two consumers:
//!
//! - [`ExactOracle`] proves optima by iterating the cube bound downward to
//!   UNSAT, re-costing every SAT witness with the exact per-constraint
//!   minimizer — so the proven optimum and the legacy exact evaluation
//!   cross-check each other bit for bit.
//! - [`SatEncoder`] wraps the oracle as a portfolio [`Encoder`] behind a
//!   size guard (`nv <= 5`) and a deterministic internal conflict cap, so
//!   the `sat` member always terminates quickly and reports `Complete`
//!   unless the *external* budget ran out.
//!
//! ## The bound-tightening loop
//!
//! Let `upper` be the exact cost of the best known encoding (seeded with
//! the natural encoding or a caller-provided warm start) and `lower` the
//! number of non-trivial constraints (each needs at least one cube).
//! Repeatedly solve the CNF at bound `upper - 1`:
//!
//! - **SAT** — decode the witness, re-cost it exactly, and jump `upper`
//!   down to that cost (always `<= upper - 1`, usually much less);
//! - **UNSAT** — `upper` is optimal: no encoding beats it, and the best
//!   witness achieves it;
//! - **Unknown** — the budget ran out (or the conflict cap hit): return
//!   the best witness so far with `optimal = false`, never hang.
//!
//! Soundness of the cross-check: if the loop ends with UNSAT at
//! `upper - 1`, any encoding of cost `< upper` would make that formula
//! satisfiable — so the exact evaluator must agree that the witness costs
//! exactly `upper`, and every heuristic encoder's cost is `>= upper`.

#![warn(missing_docs)]

use picola_constraints::{min_code_length, Encoding, GroupConstraint};
use picola_core::{
    evaluate_encoding_with, Budget, Completion, Encoder, EvalMinimizer,
};
use picola_logic::sat::{FaceProblem, SatOutcome, SatStats, Solver};
use std::fmt;

pub use picola_logic::sat::{Cnf, FaceCnf, Lit};

/// Node cap handed to the exact per-constraint minimizer when re-costing
/// witnesses. Functions here have at most `2^5` points, far below any
/// realistic branch-and-bound blow-up, so this never truncates in practice.
const EXACT_EVAL_NODES: usize = 1 << 20;

/// Errors from [`ExactOracle::prove`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The instance needs more code bits than the oracle's size guard
    /// allows; CNF size would explode.
    TooLarge {
        /// Required code length for the instance.
        nv: usize,
        /// The oracle's configured ceiling.
        max_nv: usize,
    },
    /// No valid encoding exists (more symbols than vertices — cannot
    /// happen with `nv = min_code_length(n)`, but the API allows overrides).
    Infeasible,
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::TooLarge { nv, max_nv } => {
                write!(f, "instance needs nv={nv} bits, above the SAT oracle guard of {max_nv}")
            }
            OracleError::Infeasible => write!(f, "no injective encoding exists"),
        }
    }
}

impl std::error::Error for OracleError {}

/// What the oracle proved (or got to before the budget ran out).
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// The best encoding found.
    pub encoding: Encoding,
    /// Its exact Table I cost (total minimized cubes over non-trivial
    /// constraints), computed by the independent exact evaluator.
    pub cost: usize,
    /// The proven lower bound: equals `cost` when `optimal`, otherwise
    /// the trivial one-cube-per-constraint floor.
    pub lower_bound: usize,
    /// `true` when UNSAT at `cost - 1` was proven (or `cost` already sits
    /// on the trivial floor): `cost` is the exact optimum.
    pub optimal: bool,
    /// How the run ended with respect to the *external* budget. An
    /// internal conflict-cap stop leaves this `Complete` (with
    /// `optimal = false`).
    pub completion: Completion,
    /// SAT solver calls made by the bound-tightening loop.
    pub rounds: usize,
    /// Aggregate solver counters across all rounds.
    pub stats: SatStats,
}

/// Proves exact face-constraint encoding optima via SAT.
///
/// See the crate docs for the loop; construction is plain-struct so tests
/// can tighten or loosen the guards.
#[derive(Debug, Clone)]
pub struct ExactOracle {
    /// Size guard: instances needing more bits than this are rejected
    /// ([`OracleError::TooLarge`]). CNF size grows as `O(n^2 nv + n K nv)`;
    /// 5 bits (32 symbols) is the practical ceiling for the small solver.
    pub max_nv: usize,
    /// Optional deterministic cap on conflicts *per solver call*; reaching
    /// it ends the loop with `optimal = false` but does not touch the
    /// external budget. `None` (the default) lets each probe run to an
    /// answer or budget exhaustion.
    pub conflict_limit: Option<u64>,
}

impl Default for ExactOracle {
    fn default() -> Self {
        ExactOracle {
            max_nv: 5,
            conflict_limit: None,
        }
    }
}

/// Exact Table I cost of `enc`: per-constraint minimum SOP covers via the
/// Quine–McCluskey branch-and-bound, summed over non-trivial constraints.
#[must_use]
pub fn exact_cost(enc: &Encoding, constraints: &[GroupConstraint]) -> usize {
    evaluate_encoding_with(
        enc,
        constraints,
        EvalMinimizer::Exact {
            max_nodes: EXACT_EVAL_NODES,
        },
    )
    .total_cubes
}

impl ExactOracle {
    /// Proves the optimum for `n` symbols under `constraints`, seeding the
    /// upper bound with the natural encoding.
    pub fn prove(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> Result<OracleOutcome, OracleError> {
        self.prove_from(n, constraints, None, budget)
    }

    /// [`ExactOracle::prove`] with a warm-start encoding: a good heuristic
    /// seed tightens the initial upper bound and saves SAT rounds. The
    /// warm start must encode exactly `n` symbols in `min_code_length(n)`
    /// bits; anything else is ignored.
    pub fn prove_from(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        warm_start: Option<&Encoding>,
        budget: &Budget,
    ) -> Result<OracleOutcome, OracleError> {
        let nv = min_code_length(n);
        if nv > self.max_nv {
            return Err(OracleError::TooLarge {
                nv,
                max_nv: self.max_nv,
            });
        }
        if nv >= usize::BITS as usize || n > (1usize << nv) {
            return Err(OracleError::Infeasible);
        }
        let groups: Vec<Vec<usize>> = constraints
            .iter()
            .filter(|c| !c.is_trivial())
            .map(|c| c.members().iter().collect())
            .collect();
        let mut best = match warm_start {
            Some(w) if w.num_symbols() == n && w.nv() == nv => w.clone(),
            _ => Encoding::natural(n),
        };
        let mut upper = exact_cost(&best, constraints);
        let lower_floor = groups.len();
        let problem = FaceProblem { n, nv, groups };
        let mut rounds = 0usize;
        let mut stats = SatStats::default();
        let mut optimal = upper <= lower_floor;
        let mut lower = lower_floor;
        while upper > lower {
            let k = upper - 1;
            let compiled = problem.compile(k);
            let mut solver = Solver::from_cnf(&compiled.cnf);
            solver.set_conflict_limit(self.conflict_limit);
            rounds += 1;
            let outcome = solver.solve(budget);
            stats.absorb(solver.stats());
            match outcome {
                SatOutcome::Sat(model) => {
                    let Ok(enc) = Encoding::new(nv, compiled.decode_codes(&model)) else {
                        // A model that decodes to duplicate codes would be
                        // a compiler bug; degrade rather than loop forever.
                        break;
                    };
                    let cost = exact_cost(&enc, constraints);
                    if cost >= upper {
                        // Ditto: the witness must beat the bound it
                        // satisfied. Degrade on inconsistency.
                        break;
                    }
                    best = enc;
                    upper = cost;
                    optimal = upper <= lower_floor;
                }
                SatOutcome::Unsat => {
                    lower = upper;
                    optimal = true;
                }
                SatOutcome::Unknown => break,
            }
        }
        Ok(OracleOutcome {
            encoding: best,
            cost: upper,
            lower_bound: if optimal { upper } else { lower_floor },
            optimal,
            completion: budget.completion(),
            rounds,
            stats,
        })
    }
}

/// Default per-probe conflict cap for the portfolio member: deep enough to
/// reach (and usually prove) optima on easy small-tier instances, shallow
/// enough that the member never dominates a portfolio race — the full
/// proofs belong to the [`ExactOracle`] used by tests and the bench, which
/// runs uncapped.
const ENCODER_CONFLICT_CAP: u64 = 2_000;

/// The SAT oracle as a portfolio [`Encoder`] (`"sat"`).
///
/// Behind the `nv <= max_nv` size guard it runs the bound-tightening loop
/// with a deterministic internal conflict cap and returns the best witness
/// found. Oversized instances fall back to the natural encoding rather
/// than failing — the rest of the portfolio carries them. Completion
/// reflects only the external budget, so the differential suite's
/// "complete on an unlimited budget" invariant holds like for any other
/// self-capped member (anneal's fixed schedule, for example).
#[derive(Debug, Clone)]
pub struct SatEncoder {
    /// The underlying oracle configuration.
    pub oracle: ExactOracle,
}

impl Default for SatEncoder {
    fn default() -> Self {
        SatEncoder {
            oracle: ExactOracle {
                max_nv: 5,
                conflict_limit: Some(ENCODER_CONFLICT_CAP),
            },
        }
    }
}

impl Encoder for SatEncoder {
    fn name(&self) -> &str {
        "sat"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_bounded(n, constraints, &Budget::unlimited()).0
    }

    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        match self.oracle.prove(n, constraints, budget) {
            Ok(outcome) => (outcome.encoding, outcome.completion),
            Err(_) => (Encoding::natural(n), budget.completion()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_constraints::SymbolSet;

    fn groups(n: usize, gs: &[&[usize]]) -> Vec<GroupConstraint> {
        gs.iter()
            .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
            .collect()
    }

    #[test]
    fn proves_the_embeddable_case_at_the_floor() {
        // 8 symbols, two disjoint small groups: both embed as faces, so
        // the optimum is one cube each.
        let cs = groups(8, &[&[0, 1, 2, 3], &[4, 5]]);
        let out = ExactOracle::default()
            .prove(8, &cs, &Budget::unlimited())
            .expect("within guard");
        assert!(out.optimal);
        assert_eq!(out.cost, 2);
        assert_eq!(out.lower_bound, 2);
        assert_eq!(exact_cost(&out.encoding, &cs), 2);
    }

    #[test]
    fn no_constraints_cost_zero() {
        let out = ExactOracle::default()
            .prove(6, &[], &Budget::unlimited())
            .expect("within guard");
        assert!(out.optimal);
        assert_eq!(out.cost, 0);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn overlapping_groups_get_a_proven_optimum() {
        let cs = groups(8, &[&[0, 1, 2], &[2, 3, 4], &[5, 6]]);
        let out = ExactOracle::default()
            .prove(8, &cs, &Budget::unlimited())
            .expect("within guard");
        assert!(out.optimal, "small instance must be proven");
        assert_eq!(out.cost, out.lower_bound);
        assert_eq!(exact_cost(&out.encoding, &cs), out.cost);
        // Optimality against the trivial floor: >= one cube per group.
        assert!(out.cost >= 3);
    }

    #[test]
    fn size_guard_rejects_big_instances() {
        let err = ExactOracle::default().prove(64, &[], &Budget::unlimited());
        assert!(matches!(err, Err(OracleError::TooLarge { nv: 6, max_nv: 5 })));
    }

    #[test]
    fn warm_start_never_worsens_the_answer() {
        let cs = groups(8, &[&[0, 3, 5], &[1, 2]]);
        let oracle = ExactOracle::default();
        let cold = oracle.prove(8, &cs, &Budget::unlimited()).expect("cold");
        let warm = oracle
            .prove_from(8, &cs, Some(&cold.encoding), &Budget::unlimited())
            .expect("warm");
        assert_eq!(warm.cost, cold.cost);
        assert!(warm.rounds <= cold.rounds);
    }

    #[test]
    fn exhausted_budget_degrades_not_hangs() {
        let cs = groups(10, &[&[0, 1, 2], &[3, 4, 5], &[6, 7, 8, 9]]);
        let budget = Budget::with_work_limit(3);
        let out = ExactOracle::default()
            .prove(10, &cs, &budget)
            .expect("within guard");
        assert!(!out.completion.is_complete());
        assert_eq!(out.encoding.num_symbols(), 10);
    }

    #[test]
    fn encoder_member_is_honest_and_deterministic() {
        let cs = groups(10, &[&[0, 1, 2, 3], &[5, 6], &[8, 9]]);
        let enc = SatEncoder::default();
        assert_eq!(enc.name(), "sat");
        let (a, ca) = enc.encode_bounded(10, &cs, &Budget::unlimited());
        let (b, cb) = enc.encode_bounded(10, &cs, &Budget::unlimited());
        assert_eq!(a, b, "unlimited-budget runs are bit-identical");
        assert!(ca.is_complete());
        assert!(cb.is_complete());
        assert_eq!(a.num_symbols(), 10);
    }

    #[test]
    fn encoder_guard_falls_back_to_natural() {
        let enc = SatEncoder::default();
        let (e, c) = enc.encode_bounded(64, &[], &Budget::unlimited());
        assert_eq!(e, Encoding::natural(64));
        assert!(c.is_complete());
    }
}
