//! # picola-stassign — state assignment of finite state machines
//!
//! The application the paper evaluates in Table II: a state-assignment tool
//! whose core is the PICOLA encoder. The flow is the classic NOVA-era
//! pipeline — multi-valued minimization of the symbolic cover, face
//! constraints, minimum-length encoding, ESPRESSO on the encoded machine —
//! with the encoder pluggable so the same flow measures PICOLA against the
//! NOVA-style and ENC-style baselines.
//!
//! ```
//! use picola_core::PicolaEncoder;
//! use picola_fsm::benchmark_fsm;
//! use picola_stassign::{assign_states, FlowOptions};
//!
//! let fsm = benchmark_fsm("lion9").expect("suite machine");
//! let result = assign_states(&fsm, &PicolaEncoder::default(), &FlowOptions::default());
//! assert_eq!(result.encoding.nv(), 4); // ceil(log2 9)
//! assert!(result.size > 0);
//! ```

#![warn(missing_docs)]

pub mod adjacency;
pub mod encode_fsm;
pub mod flow;
pub mod new_tool;

pub use adjacency::next_state_adjacency;
pub use encode_fsm::{encode_machine, EncodedMachine};
pub use flow::{assign_states, assign_states_bounded, fsm_constraints, FlowOptions, StateAssignment};
pub use new_tool::PicolaStateEncoder;
