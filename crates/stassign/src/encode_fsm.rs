//! Building the encoded (fully binary) two-level cover of an FSM.

use picola_constraints::Encoding;
use picola_fsm::{Fsm, Ternary};
use picola_logic::{Cover, Cube, Domain, DomainBuilder};

/// The encoded combinational component of a machine: next-state logic and
/// output logic as one multi-output Boolean cover.
#[derive(Debug, Clone)]
pub struct EncodedMachine {
    /// Domain: primary inputs, then `nv` state-bit variables, then the
    /// output variable with `nv` next-state bits followed by the primary
    /// outputs.
    pub domain: Domain,
    /// On-set.
    pub on: Cover,
    /// Don't-care set (dash outputs, `*` next states, unused state codes).
    pub dc: Cover,
    /// Code length used for the state field.
    pub nv: usize,
}

/// Encodes `fsm` with `enc`, producing the binary cover whose minimized
/// size is the paper's Table II metric.
///
/// Unused state code words are added to the don't-care set for every
/// output, as all NOVA-era state-assignment flows do.
///
/// # Panics
///
/// Panics if the encoding's symbol count differs from the machine's state
/// count.
pub fn encode_machine(fsm: &Fsm, enc: &Encoding) -> EncodedMachine {
    assert_eq!(
        enc.num_symbols(),
        fsm.num_states(),
        "encoding does not match the machine's state count"
    );
    let ni = fsm.num_inputs();
    let no = fsm.num_outputs();
    let nv = enc.nv();
    let mut builder = DomainBuilder::new().binaries("x", ni);
    for b in 0..nv {
        builder = builder.binary(&format!("y{b}"));
    }
    let domain = builder.output("z", nv + no).build();
    let ov = domain.require_output_var();
    let out_off = domain.var(ov).offset();

    let mut on = Cover::empty(&domain);
    let mut dc = Cover::empty(&domain);

    let state_bits = |cube: &mut Cube, code: u32| {
        for b in 0..nv {
            cube.restrict_binary(&domain, ni + b, code >> b & 1 == 1);
        }
    };
    let with_outputs = |base: &Cube, parts: &[usize]| -> Option<Cube> {
        if parts.is_empty() {
            return None;
        }
        let mut c = base.clone();
        for p in domain.var(ov).part_range() {
            c.clear_part(p);
        }
        for &q in parts {
            c.set_part(out_off + q);
        }
        Some(c)
    };

    for t in fsm.transitions() {
        let mut base = Cube::full(&domain);
        for (v, lit) in t.input.iter().enumerate() {
            match lit {
                Ternary::Zero => base.restrict_binary(&domain, v, false),
                Ternary::One => base.restrict_binary(&domain, v, true),
                Ternary::DontCare => {}
            }
        }
        if let Some(s) = t.from {
            state_bits(&mut base, enc.code(s));
        }

        let mut on_parts: Vec<usize> = Vec::new();
        let mut dc_parts: Vec<usize> = Vec::new();
        match t.to {
            Some(s) => {
                let code = enc.code(s);
                for b in 0..nv {
                    if code >> b & 1 == 1 {
                        on_parts.push(b);
                    }
                }
            }
            None => dc_parts.extend(0..nv),
        }
        for (o, lit) in t.output.iter().enumerate() {
            match lit {
                Ternary::One => on_parts.push(nv + o),
                Ternary::DontCare => dc_parts.push(nv + o),
                Ternary::Zero => {}
            }
        }
        if let Some(c) = with_outputs(&base, &on_parts) {
            on.push(c);
        }
        if let Some(c) = with_outputs(&base, &dc_parts) {
            dc.push(c);
        }
    }

    // Unused state codes: full don't cares.
    let mut used = vec![false; 1usize << nv];
    for &c in enc.codes() {
        used[c as usize] = true;
    }
    let all_outputs: Vec<usize> = (0..nv + no).collect();
    for (w, &u) in used.iter().enumerate() {
        if u {
            continue;
        }
        let mut base = Cube::full(&domain);
        state_bits(&mut base, w as u32);
        if let Some(c) = with_outputs(&base, &all_outputs) {
            dc.push(c);
        }
    }

    EncodedMachine {
        domain,
        on,
        dc,
        nv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_fsm::parse_kiss;

    const TOY: &str = "\
.i 1
.o 1
.r a
0 a a 0
1 a b 1
1 b a -
0 b b 0
.e
";

    fn enc2() -> Encoding {
        Encoding::new(1, vec![0, 1]).unwrap()
    }

    #[test]
    fn domain_shape() {
        let m = parse_kiss("toy", TOY).unwrap();
        let em = encode_machine(&m, &enc2());
        // 1 input + 1 state bit + output var
        assert_eq!(em.domain.num_vars(), 3);
        let ov = em.domain.output_var().unwrap();
        assert_eq!(em.domain.var(ov).parts(), 1 + 1);
    }

    #[test]
    fn on_cubes_reflect_codes() {
        let m = parse_kiss("toy", TOY).unwrap();
        let em = encode_machine(&m, &enc2());
        // transition "1 a b 1": input 1, state 0 -> next-state bit (code of
        // b = 1) and the PO are asserted.
        let ov = em.domain.output_var().unwrap();
        let off = em.domain.var(ov).offset();
        assert!(em.on.iter().any(|c| c.has_part(off) && c.has_part(off + 1)));
    }

    #[test]
    fn dash_outputs_become_dc() {
        let m = parse_kiss("toy", TOY).unwrap();
        let em = encode_machine(&m, &enc2());
        assert_eq!(em.dc.len(), 1);
    }

    #[test]
    fn unused_codes_are_dc() {
        // three states in two bits: one unused code
        let text = ".i 1\n.o 1\n0 a b 1\n1 b c 1\n0 c a 1\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let enc = Encoding::new(2, vec![0, 1, 2]).unwrap();
        let em = encode_machine(&m, &enc);
        // the unused code 11 contributes one dc cube covering all outputs
        let ov = em.domain.output_var().unwrap();
        let full_out = em
            .dc
            .iter()
            .any(|c| em.domain.var(ov).part_range().all(|p| c.has_part(p)));
        assert!(full_out);
    }

    #[test]
    #[should_panic]
    fn mismatched_encoding_panics() {
        let m = parse_kiss("toy", TOY).unwrap();
        let enc = Encoding::new(2, vec![0, 1, 2]).unwrap();
        let _ = encode_machine(&m, &enc);
    }
}
