//! The paper's state-assignment tool: PICOLA plus next-state structure.
//!
//! The paper builds its tool on the *dynamic model* of \[14\], which exploits
//! the state-transition structure beyond pure face constraints. We realize
//! the same idea in two compositional steps:
//!
//! 1. the strongest next-state adjacency pairs are injected as weighted
//!    two-symbol face constraints (a satisfied pair spans a minimal face,
//!    i.e. the codes sit close on the hypercube), and
//! 2. a polish pass hill-climbs over code swaps/moves with a lexicographic
//!    objective: first the face-constraint cube estimate (never worsened),
//!    then an output-plane score — fan-in-weighted code popcount (heavily
//!    targeted states want sparse codes, so their incoming rows assert few
//!    next-state bits) plus weighted code distance of adjacent state pairs.

use crate::adjacency::next_state_adjacency;
use picola_constraints::{Encoding, GroupConstraint, SymbolSet};
use picola_core::{
    estimate_codes_cubes_with, Budget, Completion, CubesScratch, Encoder, PicolaEncoder,
};
use picola_fsm::Fsm;

/// PICOLA with next-state-structure augmentation — the “NEW” column of
/// Table II.
#[derive(Debug, Clone)]
pub struct PicolaStateEncoder {
    /// The underlying PICOLA configuration.
    pub picola: PicolaEncoder,
    /// Adjacency triples `(a, b, weight)` from [`next_state_adjacency`].
    pub adjacency: Vec<(usize, usize, f64)>,
    /// Per-state fan-in weight (number of transition rows targeting it).
    pub fanin: Vec<f64>,
    /// How many of the strongest pairs to inject as constraints.
    pub top_pairs: usize,
    /// Polish passes (0 disables the output-plane polish).
    pub polish_passes: usize,
}

impl PicolaStateEncoder {
    /// Builds the tool for a specific machine.
    pub fn for_fsm(fsm: &Fsm) -> Self {
        let mut fanin = vec![0.0; fsm.num_states()];
        for t in fsm.transitions() {
            if let Some(to) = t.to {
                fanin[to] += 1.0;
            }
        }
        PicolaStateEncoder {
            picola: PicolaEncoder::default(),
            adjacency: next_state_adjacency(fsm),
            fanin,
            // Pair injection is available for experiments (see the `sweep`
            // binary) but off by default: on the suite the polish pass
            // captures the output-plane structure better on its own.
            top_pairs: 0,
            polish_passes: 2,
        }
    }

    fn output_plane_score_codes(&self, codes: &[u32]) -> f64 {
        let n = codes.len();
        let mut score = 0.0;
        for (s, &w) in self.fanin.iter().enumerate() {
            if s < n {
                score += w * f64::from(codes[s].count_ones());
            }
        }
        for &(a, b, w) in &self.adjacency {
            if a < n && b < n {
                score += 0.5 * w * f64::from((codes[a] ^ codes[b]).count_ones());
            }
        }
        score
    }

    fn polish(&self, enc: Encoding, constraints: &[GroupConstraint], budget: &Budget) -> Encoding {
        let n = enc.num_symbols();
        let nv = enc.nv();
        let size = 1usize << nv;
        let mut scratch = CubesScratch::new();
        let mut codes = enc.into_codes();
        let mut best = (
            estimate_codes_cubes_with(&codes, constraints, &mut scratch),
            self.output_plane_score_codes(&codes),
        );
        // Every candidate of a pass derives from the pass-start codes
        // (`base`), exactly as the old up-front materialized list did: an
        // accepted improvement updates `codes` while later candidates of the
        // same pass still patch `base`. Only the `O(n·2^nv)` list of owned
        // code vectors is gone — `cand` is one reusable buffer.
        let mut base: Vec<u32> = Vec::with_capacity(n);
        let mut cand: Vec<u32> = Vec::with_capacity(n);
        'passes: for _ in 0..self.polish_passes {
            let mut improved = false;
            base.clear();
            base.extend_from_slice(&codes);
            for i in 0..n {
                for j in (i + 1)..n {
                    if !budget.tick("picola.refine", 1) {
                        break 'passes;
                    }
                    cand.clear();
                    cand.extend_from_slice(&base);
                    cand.swap(i, j);
                    let score = (
                        estimate_codes_cubes_with(&cand, constraints, &mut scratch),
                        self.output_plane_score_codes(&cand),
                    );
                    if score.0 < best.0 || (score.0 == best.0 && score.1 + 1e-9 < best.1) {
                        std::mem::swap(&mut codes, &mut cand);
                        best = score;
                        improved = true;
                    }
                }
                for w in 0..size as u32 {
                    if base.contains(&w) {
                        continue;
                    }
                    if !budget.tick("picola.refine", 1) {
                        break 'passes;
                    }
                    cand.clear();
                    cand.extend_from_slice(&base);
                    cand[i] = w;
                    let score = (
                        estimate_codes_cubes_with(&cand, constraints, &mut scratch),
                        self.output_plane_score_codes(&cand),
                    );
                    if score.0 < best.0 || (score.0 == best.0 && score.1 + 1e-9 < best.1) {
                        std::mem::swap(&mut codes, &mut cand);
                        best = score;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        // Swap/move candidates keep codes distinct by construction; fall back
        // to the natural encoding rather than panic if that ever breaks.
        Encoding::new(nv, codes).unwrap_or_else(|_| Encoding::natural(n))
    }
}

impl Encoder for PicolaStateEncoder {
    fn name(&self) -> &str {
        "picola-sa"
    }

    fn encode(&self, n: usize, constraints: &[GroupConstraint]) -> Encoding {
        self.encode_bounded(n, constraints, &Budget::unlimited()).0
    }

    fn encode_bounded(
        &self,
        n: usize,
        constraints: &[GroupConstraint],
        budget: &Budget,
    ) -> (Encoding, Completion) {
        let mut augmented = constraints.to_vec();
        let mut pairs = self.adjacency.clone();
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        for &(a, b, w) in pairs.iter().take(self.top_pairs) {
            if a >= n || b >= n {
                continue;
            }
            let mut c = GroupConstraint::new(SymbolSet::from_members(n, [a, b]));
            c.set_weight(w.round().max(1.0) as usize);
            augmented.push(c);
        }
        let (enc, _) = self.picola.encode_bounded(n, &augmented, budget);
        // Polish against the *original* constraints: the pair constraints
        // already shaped the construction, and the output-plane score keeps
        // pulling adjacent pairs together.
        (self.polish(enc, constraints, budget), budget.completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_core::estimate_cubes;
    use picola_fsm::parse_kiss;

    const SIBS: &str = "\
.i 2
.o 1
0- a b 0
1- a c 0
-- b a 1
-0 c a 0
-1 c d 1
-- d d 1
.e
";

    #[test]
    fn augmentation_pulls_sibling_next_states_together() {
        let m = parse_kiss("t", SIBS).unwrap();
        let tool = PicolaStateEncoder::for_fsm(&m);
        let enc = tool.encode(m.num_states(), &[]);
        let d = (enc.code(1) ^ enc.code(2)).count_ones();
        assert!(d <= 1, "siblings b,c should be adjacent:\n{enc}");
    }

    #[test]
    fn hot_states_get_sparse_codes() {
        // state a is targeted by three rows; it should get a low-popcount
        // code (no face constraints to interfere).
        let m = parse_kiss("t", SIBS).unwrap();
        let tool = PicolaStateEncoder::for_fsm(&m);
        let enc = tool.encode(m.num_states(), &[]);
        assert!(
            enc.code(0).count_ones() <= 1,
            "hot state a should be sparse:\n{enc}"
        );
    }

    #[test]
    fn polish_never_worsens_the_constraint_estimate() {
        let m = parse_kiss("t", SIBS).unwrap();
        let cs = vec![GroupConstraint::new(SymbolSet::from_members(4, [1, 2]))];
        let tool = PicolaStateEncoder::for_fsm(&m);
        let base = tool.picola.encode(4, &cs);
        let polished = tool.polish(base.clone(), &cs, &Budget::unlimited());
        assert!(estimate_cubes(&polished, &cs) <= estimate_cubes(&base, &cs));
    }

    #[test]
    fn augmentation_respects_symbol_range() {
        let tool = PicolaStateEncoder {
            picola: PicolaEncoder::default(),
            adjacency: vec![(0, 9, 3.0)],
            fanin: vec![1.0; 4],
            top_pairs: 4,
            polish_passes: 1,
        };
        let enc = tool.encode(4, &[]);
        assert_eq!(enc.num_symbols(), 4);
    }
}
