//! Next-state adjacency weights for the `io_hybrid` baseline.
//!
//! NOVA's output-oriented modes reward codes that keep *related* states
//! close: states that are next states of a common present state (their
//! one-hot next-state columns can share cubes when their codes are
//! adjacent), and predecessor/successor pairs. We derive weighted pairs
//! from the state-transition table.

use picola_fsm::Fsm;
use std::collections::BTreeMap;

/// Computes `(state_a, state_b, weight)` adjacency triples for `fsm`.
///
/// Weights: +1 per pair of transitions out of the same present state with
/// different next states (sibling next states), +0.5 per transition for its
/// (present, next) pair. Pairs are normalized with `a < b` and merged.
pub fn next_state_adjacency(fsm: &Fsm) -> Vec<(usize, usize, f64)> {
    let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut add = |a: usize, b: usize, w: f64| {
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        *weights.entry(key).or_insert(0.0) += w;
    };

    let rows = fsm.transitions();
    for (i, ti) in rows.iter().enumerate() {
        if let (Some(f), Some(t)) = (ti.from, ti.to) {
            add(f, t, 0.5);
        }
        for tj in rows.iter().skip(i + 1) {
            if ti.from.is_some() && ti.from == tj.from {
                if let (Some(a), Some(b)) = (ti.to, tj.to) {
                    add(a, b, 1.0);
                }
            }
        }
    }

    weights
        .into_iter()
        .map(|((a, b), w)| (a, b, w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_fsm::parse_kiss;

    #[test]
    fn siblings_and_edges_are_weighted() {
        let text = ".i 1\n.o 1\n0 a b 0\n1 a c 0\n0 b b 0\n1 c a 0\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let adj = next_state_adjacency(&m);
        // siblings b,c (both successors of a) get weight 1 from the pair
        let bc = adj
            .iter()
            .find(|&&(a, b, _)| (a, b) == (1, 2))
            .expect("pair (b,c) present");
        assert!(bc.2 >= 1.0);
        // edge a->b contributes 0.5
        let ab = adj.iter().find(|&&(x, y, _)| (x, y) == (0, 1)).unwrap();
        assert!(ab.2 >= 0.5);
    }

    #[test]
    fn self_loops_are_ignored() {
        let text = ".i 1\n.o 1\n0 a a 0\n1 a a 1\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        assert!(next_state_adjacency(&m).is_empty());
    }

    #[test]
    fn pairs_are_normalized() {
        let text = ".i 1\n.o 1\n0 a b 0\n1 b a 0\n.e\n";
        let m = parse_kiss("t", text).unwrap();
        let adj = next_state_adjacency(&m);
        assert_eq!(adj.len(), 1);
        assert_eq!((adj[0].0, adj[0].1), (0, 1));
        assert_eq!(adj[0].2, 1.0); // two directed edges x 0.5
    }
}
