//! The end-to-end state-assignment flow.
//!
//! KISS2 machine → symbolic cover → multi-valued minimization → face
//! constraints → minimum-length encoding (PICOLA or a baseline) → encoded
//! binary cover → ESPRESSO → two-level size. This is the tool evaluated in
//! the paper's Table II.

use crate::encode_fsm::encode_machine;
use picola_constraints::{
    extract_constraints_with, Encoding, ExtractMethod, ExtractOptions, GroupConstraint,
};
use picola_core::{Budget, Completion, Encoder};
use picola_fsm::{symbolic_cover, Fsm};
use picola_logic::{flat_espresso_bounded, obs, MinimizeOptions, MinimizeScratch};
use std::time::{Duration, Instant};

/// Options for [`assign_states`].
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// How face constraints are extracted from the symbolic cover.
    pub extract: ExtractMethod,
    /// Minimization options for the final encoded cover.
    pub minimize: MinimizeOptions,
    /// Merge equivalent states before encoding
    /// ([`picola_fsm::minimize_states`]). Off by default — the paper's flow
    /// does not state-minimize, but NOVA-era pipelines often ran a
    /// state-reduction step first.
    pub minimize_states: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            extract: ExtractMethod::Espresso,
            minimize: MinimizeOptions {
                // The encoded covers are large; invariant checking doubles
                // the cost and the library tests cover correctness.
                check_invariants: false,
                ..MinimizeOptions::default()
            },
            minimize_states: false,
        }
    }
}

/// The result of one state assignment.
#[derive(Debug, Clone)]
pub struct StateAssignment {
    /// Name of the machine.
    pub fsm_name: String,
    /// Name of the encoder used.
    pub encoder_name: String,
    /// Number of face constraints extracted (non-trivial).
    pub num_constraints: usize,
    /// The state encoding chosen.
    pub encoding: Encoding,
    /// Two-level size of the minimized encoded machine, in product terms —
    /// the paper's Table II `size`.
    pub size: usize,
    /// Literal count of the minimized cover (secondary measure).
    pub literals: usize,
    /// Time spent extracting constraints.
    pub extract_time: Duration,
    /// Time spent encoding.
    pub encode_time: Duration,
    /// Time spent minimizing the encoded machine.
    pub minimize_time: Duration,
    /// Whether the flow ran to completion or was cut short by its
    /// [`Budget`] (the result is still a valid assignment either way).
    pub completion: Completion,
}

impl StateAssignment {
    /// Total flow time.
    pub fn total_time(&self) -> Duration {
        self.extract_time + self.encode_time + self.minimize_time
    }
}

/// Extracts the face constraints of `fsm` (convenience wrapper used by the
/// flow, the benches and the examples).
pub fn fsm_constraints(fsm: &Fsm, method: ExtractMethod) -> Vec<GroupConstraint> {
    let sc = symbolic_cover(fsm);
    extract_constraints_with(&sc, &ExtractOptions { method })
}

/// Runs the full state-assignment flow on `fsm` with the given encoder.
pub fn assign_states(fsm: &Fsm, encoder: &dyn Encoder, opts: &FlowOptions) -> StateAssignment {
    assign_states_bounded(fsm, encoder, opts, &Budget::unlimited())
}

/// [`assign_states`] under an execution [`Budget`] shared by the encoding
/// and minimization stages. An exhausted budget never aborts the flow: each
/// stage degrades to its best valid partial result and the returned
/// [`StateAssignment::completion`] records what happened.
pub fn assign_states_bounded(
    fsm: &Fsm,
    encoder: &dyn Encoder,
    opts: &FlowOptions,
    budget: &Budget,
) -> StateAssignment {
    let reduced;
    let fsm = if opts.minimize_states {
        reduced = picola_fsm::minimize_states(fsm);
        &reduced
    } else {
        fsm
    };
    // One span per flow stage; the stage recorder is installed as the
    // thread-local current one so everything beneath (PICOLA's own spans,
    // the final ESPRESSO span, deep counters) nests under its stage.
    let flow_span = obs::current_or(budget.recorder()).span("flow");
    let _flow_cur = obs::enter(flow_span.recorder());

    let t0 = Instant::now();
    let constraints = {
        let span = flow_span.recorder().span("extract");
        let _cur = obs::enter(span.recorder());
        fsm_constraints(fsm, opts.extract)
    };
    let extract_time = t0.elapsed();

    let t1 = Instant::now();
    let (encoding, encode_completion) = {
        let span = flow_span.recorder().span("encode");
        let _cur = obs::enter(span.recorder());
        encoder.encode_bounded(fsm.num_states(), &constraints, budget)
    };
    let encode_time = t1.elapsed();

    let t2 = Instant::now();
    let (minimized, minimize_completion) = {
        let span = flow_span.recorder().span("minimize");
        let _cur = obs::enter(span.recorder());
        let em = encode_machine(fsm, &encoding);
        let mut scratch = MinimizeScratch::new();
        flat_espresso_bounded(&em.on, &em.dc, &opts.minimize, budget, &mut scratch)
    };
    let minimize_time = t2.elapsed();

    StateAssignment {
        fsm_name: fsm.name().to_owned(),
        encoder_name: encoder.name().to_owned(),
        num_constraints: constraints.iter().filter(|c| !c.is_trivial()).count(),
        encoding,
        size: minimized.len(),
        literals: minimized.literal_cost(),
        extract_time,
        encode_time,
        minimize_time,
        completion: encode_completion.and(minimize_completion),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picola_baselines::{NaturalEncoder, NovaEncoder};
    use picola_core::PicolaEncoder;
    use picola_fsm::{benchmark_fsm, parse_kiss};

    const SMALL: &str = "\
.i 2
.o 1
.r s0
-0 s0 s0 0
01 s0 s1 0
11 s0 s2 1
-- s1 s3 1
0- s2 s0 0
1- s2 s3 1
-1 s3 s0 1
-0 s3 s1 0
.e
";

    #[test]
    fn flow_produces_a_valid_assignment() {
        let m = parse_kiss("small", SMALL).unwrap();
        let r = assign_states(&m, &PicolaEncoder::default(), &FlowOptions::default());
        assert_eq!(r.encoding.num_symbols(), 4);
        assert_eq!(r.encoding.nv(), 2);
        assert!(r.size > 0);
        assert_eq!(r.encoder_name, "picola");
    }

    #[test]
    fn different_encoders_run_the_same_flow() {
        let m = parse_kiss("small", SMALL).unwrap();
        let opts = FlowOptions::default();
        let a = assign_states(&m, &PicolaEncoder::default(), &opts);
        let b = assign_states(&m, &NovaEncoder::i_hybrid(), &opts);
        let c = assign_states(&m, &NaturalEncoder, &opts);
        for r in [&a, &b, &c] {
            assert!(r.size > 0, "{}: empty implementation", r.encoder_name);
        }
    }

    #[test]
    fn flow_runs_on_a_suite_machine() {
        let m = benchmark_fsm("lion9").unwrap();
        let r = assign_states(&m, &PicolaEncoder::default(), &FlowOptions::default());
        assert_eq!(r.encoding.num_symbols(), 9);
        assert!(r.size > 0);
        assert!(r.num_constraints > 0);
    }

    #[test]
    fn state_minimization_option_shrinks_twin_heavy_machines() {
        // build a machine with two behaviourally identical states
        let text = "\
.i 1
.o 1
0 a b 0
1 a c 0
0 b a 1
1 b a 0
0 c a 1
1 c a 0
.e
";
        let m = parse_kiss("twins", text).unwrap();
        let opts = FlowOptions {
            minimize_states: true,
            ..FlowOptions::default()
        };
        let r = assign_states(&m, &PicolaEncoder::default(), &opts);
        assert_eq!(r.encoding.num_symbols(), 2, "b and c merge");
        let plain = assign_states(&m, &PicolaEncoder::default(), &FlowOptions::default());
        assert!(r.size <= plain.size);
    }

    #[test]
    fn bounded_flow_degrades_but_stays_valid() {
        let m = parse_kiss("small", SMALL).unwrap();
        let budget = Budget::with_work_limit(2);
        let r = assign_states_bounded(
            &m,
            &PicolaEncoder::default(),
            &FlowOptions::default(),
            &budget,
        );
        assert_eq!(r.encoding.num_symbols(), 4);
        assert!(r.size > 0, "degraded flow must still implement the machine");
        assert!(matches!(r.completion, Completion::Degraded { .. }));
        let full = assign_states(&m, &PicolaEncoder::default(), &FlowOptions::default());
        assert!(matches!(full.completion, Completion::Complete));
    }

    #[test]
    fn deterministic_sizes() {
        let m = parse_kiss("small", SMALL).unwrap();
        let a = assign_states(&m, &PicolaEncoder::default(), &FlowOptions::default());
        let b = assign_states(&m, &PicolaEncoder::default(), &FlowOptions::default());
        assert_eq!(a.size, b.size);
        assert_eq!(a.encoding, b.encoding);
    }
}
