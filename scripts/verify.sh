#!/bin/sh
# Full verification: release build, the complete test suite, and the
# panic-freedom lint gate (clippy::unwrap_used / expect_used / panic are
# denied workspace-wide; see [workspace.lints.clippy] in Cargo.toml).
#
# With --soak, additionally runs the 60-second daemon soak test: four
# clients hammer a picola-server under rotating chaos (worker panics,
# dropped sockets, shed queues, poisoned cache shards) and the run fails
# on any hang, lost job, or cache-conservation violation. Override the
# duration with PICOLA_SOAK_SECS (e.g. PICOLA_SOAK_SECS=10 for a quick
# local pass).
set -eu

cd "$(dirname "$0")/.."

SOAK=0
for arg in "$@"; do
    case "$arg" in
        --soak) SOAK=1 ;;
        *) echo "verify.sh: unknown argument '$arg' (supported: --soak)" >&2
           exit 2 ;;
    esac
done

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test (workspace)"
cargo test -q --offline --workspace

echo "== cargo test (workspace, no default features — obs stubbed out)"
cargo test -q --offline --workspace --no-default-features

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== differential suite"
cargo test -q --offline --test differential_encoders --test chaos_parallel \
    --test determinism

echo "== SAT oracle property suite"
# The vendored proptest derives its input stream from each test's name
# and never reads *.proptest-regressions files; shrunk failures worth
# pinning are converted to deterministic tests instead (see
# tests/paper_properties.rs::historical_shrunk_instances_stay_fixed) —
# do not check regression files in.
cargo test -q --offline -p picola-logic --test prop_sat

echo "== golden table fixtures"
sh scripts/regen_tables.sh --check

echo "== bench_json --smoke (obs metrics + work regression vs BENCH_pr3.json)"
cargo run -q --offline --release -p picola-bench --bin bench_json -- \
    --smoke --out /tmp/bench_smoke.json
if command -v python3 >/dev/null 2>&1; then
    # The smoke instances are a prefix of the standard corpus, so their
    # deterministic work counters must stay within +20% of the checked-in
    # baseline; the refine A/B invariants are validated as part of this.
    python3 scripts/check_bench_metrics.py /tmp/bench_smoke.json \
        --baseline BENCH_pr3.json
    python3 scripts/check_bench_metrics.py BENCH_pr4.json
    # The checked-in large-tier report carries the serve_ab A/B (schema
    # v5): warm global-cache runs must be bit-identical to cold runs and
    # must actually hit the shared cache (warm_hit_rate >= 0.9).
    python3 scripts/check_bench_metrics.py BENCH_pr6.json
    # Schema v6 adds the mv_ab leg (flat vs legacy on multi-valued covers,
    # bit-identical costs required); the deterministic work counters are
    # additionally gated against the pr6 report (+20%).
    python3 scripts/check_bench_metrics.py BENCH_pr7.json \
        --baseline BENCH_pr6.json
    # Schema v7 adds the sat_ab optimality-gap leg: every in-guard
    # instance must carry a proven optimum, cross-checked against the
    # exact evaluator, zero mismatches, and no heuristic below the floor;
    # per-encoder total gaps must not grow vs the pr7 report.
    python3 scripts/check_bench_metrics.py BENCH_pr8.json \
        --baseline BENCH_pr7.json
    # Schema v8 adds the kernel_ab leg (Wide vs Scalar kernel backends on
    # the flat engine): both legs must be bit-identical and the aggregate
    # wide wall-per-work must not regress below scalar; the deterministic
    # work counters are additionally gated against the pr8 report (+20%).
    python3 scripts/check_bench_metrics.py BENCH_pr9.json \
        --baseline BENCH_pr8.json
    # Schema v9 adds the stream block (huge-tier streaming-store A/B):
    # zero record mismatches across the memoryless/cold/warm legs, warm
    # hit rate >= 0.9, peak live instances within the pipeline bound, and
    # (on full-sized runs) a warm speedup of at least 5x; the
    # deterministic work counters are gated against the pr9 report (+20%).
    python3 scripts/check_bench_metrics.py BENCH_pr10.json \
        --baseline BENCH_pr9.json
else
    # Fallback without python: the metrics block must at least be present
    # and non-trivially populated in every instance.
    grep -q '"metrics"' /tmp/bench_smoke.json
    grep -q '"total_work"' /tmp/bench_smoke.json
fi
rm -f /tmp/bench_smoke.json /tmp/bench_smoke.records.bin

if [ "$SOAK" = 1 ]; then
    echo "== server soak (${PICOLA_SOAK_SECS:-60}s under rotating chaos)"
    cargo test -q --offline --release --test server_soak -- --ignored
fi

echo "verify: OK"
