#!/bin/sh
# Full verification: release build, the complete test suite, and the
# panic-freedom lint gate (clippy::unwrap_used / expect_used / panic are
# denied workspace-wide; see [workspace.lints.clippy] in Cargo.toml).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo test (workspace)"
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== differential suite"
cargo test -q --offline --test differential_encoders --test chaos_parallel \
    --test determinism

echo "== bench_json --smoke"
cargo run -q --offline --release -p picola-bench --bin bench_json -- \
    --smoke --out /tmp/bench_smoke.json
rm -f /tmp/bench_smoke.json

echo "verify: OK"
