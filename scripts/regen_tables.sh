#!/bin/sh
# Golden-table fixture hook.
#
#   scripts/regen_tables.sh          rewrite results_table1.txt / results_table2.txt
#   scripts/regen_tables.sh --check  re-derive both tables and diff the cost
#                                    columns against the checked-in fixtures
#
# The timing columns are machine-dependent by nature, so --check strips
# them before diffing; any cost drift fails loudly with the full diff.
#
# Both tables run entirely on the flat engine (it covers every domain,
# binary and multi-valued; legacy survives only as a test oracle), so the
# fixtures double as a golden record of the flat specialization rungs.
set -eu

cd "$(dirname "$0")/.."

MODE=regen
[ "${1:-}" = "--check" ] && MODE=check

gen() {
    cargo run -q --offline --release -p picola-bench --bin "$1"
}

# Strips the machine-dependent timing columns: Table I rows (8 fields) keep
# name + 4 cost columns, Table II rows (9 fields, '|' separators) keep name
# + 3 sizes; every other line passes through verbatim.
normalize() {
    awk '
        NF == 8 { print $1, $2, $3, $4, $5; next }
        NF == 9 && $4 == "|" && $7 == "|" { print $1, $2, $5, $8; next }
        { print }
    ' "$1"
}

if [ "$MODE" = regen ]; then
    gen table1 > results_table1.txt
    gen table2 > results_table2.txt
    echo "regen_tables: fixtures rewritten"
else
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    gen table1 > "$tmp/table1.txt"
    gen table2 > "$tmp/table2.txt"
    for t in 1 2; do
        normalize "results_table$t.txt" > "$tmp/want$t"
        normalize "$tmp/table$t.txt" > "$tmp/got$t"
        if ! diff -u "$tmp/want$t" "$tmp/got$t"; then
            echo "regen_tables: results_table$t.txt drifted (cost columns above)" >&2
            echo "regen_tables: run scripts/regen_tables.sh to accept the new values" >&2
            exit 1
        fi
    done
    echo "regen_tables: fixtures match"
fi
