#!/usr/bin/env python3
"""Validates a bench_json report's obs metrics.

Usage: check_bench_metrics.py REPORT.json

Fails (exit 1) unless the report parses as JSON and every instance carries
a non-empty `metrics` block: positive `total_work` and a span tree with at
least one child under the root.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: check_bench_metrics.py REPORT.json", file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as fh:
        report = json.load(fh)

    instances = report.get("instances", [])
    if not instances:
        print("check_bench_metrics: no instances in report", file=sys.stderr)
        return 1

    for inst in instances:
        name = inst.get("name", "?")
        metrics = inst.get("metrics")
        if not isinstance(metrics, dict):
            print(f"check_bench_metrics: {name}: missing metrics block", file=sys.stderr)
            return 1
        if metrics.get("total_work", 0) <= 0:
            print(f"check_bench_metrics: {name}: total_work is zero", file=sys.stderr)
            return 1
        spans = metrics.get("spans", {})
        if not spans.get("children"):
            print(f"check_bench_metrics: {name}: empty span tree", file=sys.stderr)
            return 1

    print(f"check_bench_metrics: OK ({len(instances)} instances, "
          f"work {[i['metrics']['total_work'] for i in instances]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
