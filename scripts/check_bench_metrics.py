#!/usr/bin/env python3
"""Validates a bench_json report's obs metrics, with optional regression
gating against a previous report.

Usage: check_bench_metrics.py REPORT.json [--baseline PREV.json]
                                          [--max-regress FRACTION]

Fails (exit 1) unless the report parses as JSON and every instance carries
a non-empty `metrics` block: positive `total_work` and a span tree with at
least one child under the root.

When an instance carries a `refine` A/B block (schema v3+), its invariant
flags must hold: `engines_match` (incremental and naive engines produced
identical encodings) and `parallel_matches_sequential` (thread count does
not change results).

When an instance carries `eval_ab` / `enc_ab` blocks (schema v4+), their
`matches` flag must hold (flat/legacy engines and cache-on/off runs are
bit-identical) and every leg must report a positive `work` alongside its
`wall_ms` — the wall-per-work fields the PR 5 acceptance criteria gate on.

When the report carries a `serve_ab` block per instance and a `serve`
totals block (schema v5+), the warm leg must be bit-identical to the cold
leg (`matches` per instance, `mismatches == 0` in totals) and the shared
global cache must actually serve the warm run: `totals.serve.warm_hit_rate`
must be at least 0.9. A daemon whose cache warmth does not carry across
requests fails here, not in production.

With `--baseline`, every (instance, encoder) pair present in both reports
is compared on `work` — the deterministic obs counter total, immune to
machine noise unlike wall time. The check fails if any pair's work grew by
more than `--max-regress` (default 0.20, i.e. +20%). Zero overlapping
pairs is a warning, not a failure (e.g. comparing different tiers).
"""

import json
import sys


def parse_args(argv):
    report = None
    baseline = None
    max_regress = 0.20
    it = iter(argv)
    for arg in it:
        if arg == "--baseline":
            baseline = next(it, None)
            if baseline is None:
                raise ValueError("--baseline needs a file")
        elif arg == "--max-regress":
            val = next(it, None)
            if val is None:
                raise ValueError("--max-regress needs a fraction")
            max_regress = float(val)
        elif report is None:
            report = arg
        else:
            raise ValueError(f"unexpected argument {arg!r}")
    if report is None:
        raise ValueError("missing REPORT.json")
    return report, baseline, max_regress


def check_metrics(instances):
    for inst in instances:
        name = inst.get("name", "?")
        metrics = inst.get("metrics")
        if not isinstance(metrics, dict):
            return f"{name}: missing metrics block"
        if metrics.get("total_work", 0) <= 0:
            return f"{name}: total_work is zero"
        spans = metrics.get("spans", {})
        if not spans.get("children"):
            return f"{name}: empty span tree"
    return None


def check_refine(instances):
    for inst in instances:
        name = inst.get("name", "?")
        refine = inst.get("refine")
        if refine is None:
            continue
        if not refine.get("engines_match"):
            return f"{name}: refine engines disagree (incremental vs naive)"
        if not refine.get("parallel_matches_sequential"):
            return f"{name}: refine results depend on thread count"
        if not refine.get("runs"):
            return f"{name}: refine block has no runs"
    return None


def check_ab(instances):
    for inst in instances:
        name = inst.get("name", "?")
        for label in ("eval_ab", "enc_ab", "mv_ab"):
            ab = inst.get(label)
            if ab is None:
                continue
            if not ab.get("matches"):
                return f"{name}: {label} legs disagree (engine/cache mismatch)"
            legs = ab.get("legs")
            if not legs:
                return f"{name}: {label} block has no legs"
            for leg in legs:
                if leg.get("work", 0) <= 0:
                    return f"{name}: {label} leg {leg.get('engine')} has no work"
                if "wall_ms" not in leg:
                    return f"{name}: {label} leg {leg.get('engine')} missing wall_ms"
            hits = sum(leg.get("cache_hits", 0) for leg in legs)
            misses = sum(leg.get("cache_misses", 0) for leg in legs)
            if hits + misses <= 0:
                return f"{name}: {label} records no minimize calls"
    return None


def check_serve(report):
    """Schema v5 gate: the warm (shared global cache) leg must be
    bit-identical to the cold leg and must actually hit the cache."""
    instances = report.get("instances", [])
    seen = False
    for inst in instances:
        name = inst.get("name", "?")
        ab = inst.get("serve_ab")
        if ab is None:
            continue
        seen = True
        if not ab.get("matches"):
            return f"{name}: serve_ab warm leg diverged from cold leg"
        if ab.get("warm_hits", 0) + ab.get("warm_misses", 0) <= 0:
            return f"{name}: serve_ab warm leg recorded no minimize calls"
    if not seen:
        return None
    totals = report.get("totals", {}).get("serve")
    if not isinstance(totals, dict):
        return "serve_ab instances present but no totals.serve block"
    if totals.get("mismatches", 1) != 0:
        return f"totals.serve reports {totals.get('mismatches')} mismatches"
    rate = totals.get("warm_hit_rate", 0.0)
    if rate < 0.9:
        return (f"totals.serve.warm_hit_rate {rate:.3f} < 0.90 — the global "
                f"cache is not warming across runs")
    return None


def work_map(report):
    out = {}
    for inst in report.get("instances", []):
        for enc in inst.get("encoders", []):
            out[(inst.get("name", "?"), enc.get("name", "?"))] = enc.get("work", 0)
    return out


def check_baseline(report, baseline_path, max_regress):
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    old = work_map(baseline)
    new = work_map(report)
    matched = 0
    for key, old_work in sorted(old.items()):
        if key not in new or old_work <= 0:
            continue
        matched += 1
        limit = old_work * (1.0 + max_regress)
        if new[key] > limit:
            inst, enc = key
            return (
                f"{inst}/{enc}: work regressed {old_work} -> {new[key]} "
                f"(limit {limit:.0f}, +{max_regress:.0%})",
                matched,
            )
    return None, matched


def main() -> int:
    try:
        report_path, baseline_path, max_regress = parse_args(sys.argv[1:])
    except ValueError as e:
        print(f"usage: check_bench_metrics.py REPORT.json [--baseline PREV.json]"
              f" [--max-regress FRACTION] ({e})", file=sys.stderr)
        return 2
    with open(report_path, encoding="utf-8") as fh:
        report = json.load(fh)

    instances = report.get("instances", [])
    if not instances:
        print("check_bench_metrics: no instances in report", file=sys.stderr)
        return 1

    for check in (check_metrics, check_refine, check_ab):
        err = check(instances)
        if err:
            print(f"check_bench_metrics: {err}", file=sys.stderr)
            return 1
    err = check_serve(report)
    if err:
        print(f"check_bench_metrics: {err}", file=sys.stderr)
        return 1

    matched = None
    if baseline_path is not None:
        err, matched = check_baseline(report, baseline_path, max_regress)
        if err:
            print(f"check_bench_metrics: {err}", file=sys.stderr)
            return 1
        if matched == 0:
            print("check_bench_metrics: warning: no overlapping "
                  "(instance, encoder) pairs with the baseline", file=sys.stderr)

    refined = sum(1 for i in instances if i.get("refine"))
    msg = (f"check_bench_metrics: OK ({len(instances)} instances, "
           f"{refined} with refine A/B, "
           f"work {[i['metrics']['total_work'] for i in instances]}")
    serve = report.get("totals", {}).get("serve")
    if serve:
        msg += (f", serve warm hit rate {serve.get('warm_hit_rate', 0):.0%}"
                f" @ {serve.get('speedup', 0):.2f}x")
    if matched is not None:
        msg += f", {matched} baseline pairs within +{max_regress:.0%}"
    print(msg + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
