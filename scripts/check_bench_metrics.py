#!/usr/bin/env python3
"""Validates a bench_json report's obs metrics, with optional regression
gating against a previous report.

Usage: check_bench_metrics.py REPORT.json [--baseline PREV.json]
                                          [--max-regress FRACTION]

Fails (exit 1) unless the report parses as JSON and every instance carries
a non-empty `metrics` block: positive `total_work` and a span tree with at
least one child under the root.

When an instance carries a `refine` A/B block (schema v3+), its invariant
flags must hold: `engines_match` (incremental and naive engines produced
identical encodings) and `parallel_matches_sequential` (thread count does
not change results).

When an instance carries `eval_ab` / `enc_ab` blocks (schema v4+), their
`matches` flag must hold (flat/legacy engines and cache-on/off runs are
bit-identical) and every leg must report a positive `work` alongside its
`wall_ms` — the wall-per-work fields the PR 5 acceptance criteria gate on.

When the report carries a `serve_ab` block per instance and a `serve`
totals block (schema v5+), the warm leg must be bit-identical to the cold
leg (`matches` per instance, `mismatches == 0` in totals) and the shared
global cache must actually serve the warm run: `totals.serve.warm_hit_rate`
must be at least 0.9. A daemon whose cache warmth does not carry across
requests fails here, not in production.

When the report carries a `sat_ab` block per instance and a `totals.sat`
block (schema v7+), every non-skipped instance must hold a proven optimum
that cross-checks against the independent exact evaluator, with no
heuristic reporting a cost below it; the totals must show zero mismatches
and `proved == checked`.

When the report carries `kernel_ab` blocks and a `totals.kernel` block
(schema v8+), the Wide and Scalar kernel-backend legs must be bit-identical
(`matches` per instance, `mismatches == 0` in totals) and the aggregate
`speedup_per_work` must be at least 1.0 — the wide backend may never be
slower per unit work than the scalar baseline. The speedup gate only
applies when the aggregate scalar leg is large enough to measure
(KERNEL_MIN_WALL_MS); smoke-sized aggregates gate on bit-identity alone.

When the report carries a top-level `stream` block (schema v9+, the
huge-tier streaming-store A/B), its invariants must hold: zero record
mismatches across the memoryless/cold/warm legs, warm store hit rate at
least 0.9, and peak live instances within the pipeline's configured bound.
The warm-over-cold speedup must be at least 5x, but only when the cold leg
is large enough to measure (STREAM_MIN_WALL_MS) — smoke-sized runs gate on
the invariants alone. A stream-only report (`--tier huge`) legitimately
has an empty `instances` list; the stream block is then required.

With `--baseline`, every (instance, encoder) pair present in both reports
is compared on `work` — the deterministic obs counter total, immune to
machine noise unlike wall time. The check fails if any pair's work grew by
more than `--max-regress` (default 0.20, i.e. +20%). Zero overlapping
pairs is a warning, not a failure (e.g. comparing different tiers). When
both reports carry a `totals.sat` block, each encoder's `total_gap` to the
proven optima must additionally not grow at all — the corpus and the
optima are deterministic, so any growth is a real heuristic regression.
"""

import json
import sys


def parse_args(argv):
    report = None
    baseline = None
    max_regress = 0.20
    it = iter(argv)
    for arg in it:
        if arg == "--baseline":
            baseline = next(it, None)
            if baseline is None:
                raise ValueError("--baseline needs a file")
        elif arg == "--max-regress":
            val = next(it, None)
            if val is None:
                raise ValueError("--max-regress needs a fraction")
            max_regress = float(val)
        elif report is None:
            report = arg
        else:
            raise ValueError(f"unexpected argument {arg!r}")
    if report is None:
        raise ValueError("missing REPORT.json")
    return report, baseline, max_regress


def check_metrics(instances):
    for inst in instances:
        name = inst.get("name", "?")
        metrics = inst.get("metrics")
        if not isinstance(metrics, dict):
            return f"{name}: missing metrics block"
        if metrics.get("total_work", 0) <= 0:
            return f"{name}: total_work is zero"
        spans = metrics.get("spans", {})
        if not spans.get("children"):
            return f"{name}: empty span tree"
    return None


def check_refine(instances):
    for inst in instances:
        name = inst.get("name", "?")
        refine = inst.get("refine")
        if refine is None:
            continue
        if not refine.get("engines_match"):
            return f"{name}: refine engines disagree (incremental vs naive)"
        if not refine.get("parallel_matches_sequential"):
            return f"{name}: refine results depend on thread count"
        if not refine.get("runs"):
            return f"{name}: refine block has no runs"
    return None


def check_ab(instances):
    for inst in instances:
        name = inst.get("name", "?")
        for label in ("eval_ab", "enc_ab", "mv_ab", "kernel_ab"):
            ab = inst.get(label)
            if ab is None:
                continue
            if not ab.get("matches"):
                return f"{name}: {label} legs disagree (engine/cache mismatch)"
            legs = ab.get("legs")
            if not legs:
                return f"{name}: {label} block has no legs"
            for leg in legs:
                if leg.get("work", 0) <= 0:
                    return f"{name}: {label} leg {leg.get('engine')} has no work"
                if "wall_ms" not in leg:
                    return f"{name}: {label} leg {leg.get('engine')} missing wall_ms"
            hits = sum(leg.get("cache_hits", 0) for leg in legs)
            misses = sum(leg.get("cache_misses", 0) for leg in legs)
            if hits + misses <= 0:
                return f"{name}: {label} records no minimize calls"
    return None


def check_serve(report):
    """Schema v5 gate: the warm (shared global cache) leg must be
    bit-identical to the cold leg and must actually hit the cache."""
    instances = report.get("instances", [])
    seen = False
    for inst in instances:
        name = inst.get("name", "?")
        ab = inst.get("serve_ab")
        if ab is None:
            continue
        seen = True
        if not ab.get("matches"):
            return f"{name}: serve_ab warm leg diverged from cold leg"
        if ab.get("warm_hits", 0) + ab.get("warm_misses", 0) <= 0:
            return f"{name}: serve_ab warm leg recorded no minimize calls"
    if not seen:
        return None
    totals = report.get("totals", {}).get("serve")
    if not isinstance(totals, dict):
        return "serve_ab instances present but no totals.serve block"
    if totals.get("mismatches", 1) != 0:
        return f"totals.serve reports {totals.get('mismatches')} mismatches"
    rate = totals.get("warm_hit_rate", 0.0)
    if rate < 0.9:
        return (f"totals.serve.warm_hit_rate {rate:.3f} < 0.90 — the global "
                f"cache is not warming across runs")
    return None


def check_sat(report):
    """Schema v7 gate: inside the oracle's size guard the optimum must be
    proved and cross-checked, and every heuristic must sit at or above it."""
    instances = report.get("instances", [])
    seen = False
    for inst in instances:
        name = inst.get("name", "?")
        ab = inst.get("sat_ab")
        if ab is None:
            continue
        seen = True
        if ab.get("skipped"):
            continue
        if not ab.get("proved"):
            return f"{name}: sat_ab optimum was not proved (UNSAT step missing)"
        if not ab.get("oracle_matches_exact"):
            return (f"{name}: sat witness cost disagrees with the exact "
                    f"evaluator — the CNF compiler and Table I diverge")
        optimum = ab.get("optimum", 0)
        for g in ab.get("gaps", []):
            if g.get("gap", -1) < 0 or g.get("exact_cost", 0) < optimum:
                return (f"{name}: encoder {g.get('name')} reports cost "
                        f"{g.get('exact_cost')} below the proven optimum "
                        f"{optimum}")
        if not ab.get("matches"):
            return f"{name}: sat_ab mismatch"
    if not seen:
        return None
    totals = report.get("totals", {}).get("sat")
    if not isinstance(totals, dict):
        return "sat_ab instances present but no totals.sat block"
    if totals.get("mismatches", 1) != 0:
        return f"totals.sat reports {totals.get('mismatches')} mismatches"
    if totals.get("proved") != totals.get("checked"):
        return (f"totals.sat proved {totals.get('proved')} != checked "
                f"{totals.get('checked')} — some optimum is unproven")
    return None


# Below this much aggregate scalar-leg wall time the kernel A/B speedup is
# scheduler noise, not signal: a smoke run's handful of two-word instances
# totals a few milliseconds and jitters ±2% either side of parity. The
# checked-in large-tier reports (BENCH_pr9.json: >100 ms per leg) are what
# the speedup gate is for; bit-identity (mismatches == 0) is gated always.
KERNEL_MIN_WALL_MS = 25.0


def check_kernel(report):
    """Schema v8 gate: the Wide and Scalar kernel backends must be
    bit-identical on every instance (cost and work), and in aggregate the
    Wide backend's wall-per-work must not regress below Scalar's. The gate
    is on the totals, not per instance: tiny instances sit at parity (a
    couple of one/two-word minimize calls have nothing to vectorize) and
    their sub-millisecond legs are scheduler noise. The speedup check only
    applies when the aggregate is large enough to be signal (see
    KERNEL_MIN_WALL_MS)."""
    instances = report.get("instances", [])
    if not any(inst.get("kernel_ab") for inst in instances):
        return None
    totals = report.get("totals", {}).get("kernel")
    if not isinstance(totals, dict):
        return "kernel_ab instances present but no totals.kernel block"
    if totals.get("mismatches", 1) != 0:
        return f"totals.kernel reports {totals.get('mismatches')} mismatches"
    if totals.get("scalar_uncached_wall_ms", 0.0) < KERNEL_MIN_WALL_MS:
        return None
    speedup = totals.get("speedup_per_work", 0.0)
    if speedup < 1.0:
        return (f"totals.kernel.speedup_per_work {speedup:.3f} < 1.00 — the "
                f"wide kernel backend is slower per unit work than scalar")
    return None


# Below this much cold-leg wall time the stream A/B speedup is I/O and
# scheduler noise: a smoke-sized huge-tier run finishes both legs in a few
# milliseconds. The checked-in full runs are what the 5x gate is for; the
# structural invariants (mismatches, hit rate, peak-live bound) are gated
# always.
STREAM_MIN_WALL_MS = 50.0


def check_stream(report):
    """Schema v9 gate: the huge-tier streaming-store A/B. The store must
    never change a record, must actually answer the warm leg, and the
    pipeline's bounded-memory tripwire must hold."""
    stream = report.get("stream")
    if stream is None:
        return None
    if stream.get("mismatches", 1) != 0:
        return (f"stream reports {stream.get('mismatches')} record mismatches "
                f"across the memoryless/cold/warm legs")
    rate = stream.get("hit_rate", 0.0)
    if rate < 0.9:
        return (f"stream.hit_rate {rate:.3f} < 0.90 — the result store is "
                f"not answering the warm leg")
    peak = stream.get("peak_live", 1 << 60)
    bound = stream.get("live_bound", 0)
    if peak > bound:
        return (f"stream.peak_live {peak} exceeds live_bound {bound} — the "
                f"pipeline is not bounded-memory")
    legs = {leg.get("name"): leg for leg in stream.get("legs", [])}
    for name in ("memoryless", "cold", "warm"):
        if name not in legs:
            return f"stream block is missing the {name} leg"
    cold_wall = legs["cold"].get("wall_ms", 0.0)
    if cold_wall < STREAM_MIN_WALL_MS:
        return None
    speedup = stream.get("speedup", 0.0)
    if speedup < 5.0:
        return (f"stream.speedup {speedup:.2f} < 5.00 — a warm store run is "
                f"not paying for itself")
    return None


def sat_gap_map(report):
    totals = report.get("totals", {}).get("sat")
    if not isinstance(totals, dict):
        return {}
    return {g.get("name", "?"): g.get("total_gap", 0)
            for g in totals.get("gaps", [])}


def work_map(report):
    out = {}
    for inst in report.get("instances", []):
        for enc in inst.get("encoders", []):
            out[(inst.get("name", "?"), enc.get("name", "?"))] = enc.get("work", 0)
    return out


def check_baseline(report, baseline_path, max_regress):
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    old = work_map(baseline)
    new = work_map(report)
    matched = 0
    for key, old_work in sorted(old.items()):
        if key not in new or old_work <= 0:
            continue
        matched += 1
        limit = old_work * (1.0 + max_regress)
        if new[key] > limit:
            inst, enc = key
            return (
                f"{inst}/{enc}: work regressed {old_work} -> {new[key]} "
                f"(limit {limit:.0f}, +{max_regress:.0%})",
                matched,
            )
    # Optimality gaps are deterministic (fixed corpus, proven optima), so
    # any growth at all is a genuine heuristic regression — no tolerance.
    old_gaps = sat_gap_map(baseline)
    new_gaps = sat_gap_map(report)
    for enc, old_gap in sorted(old_gaps.items()):
        if enc in new_gaps and new_gaps[enc] > old_gap:
            return (
                f"{enc}: optimality gap regressed {old_gap} -> "
                f"{new_gaps[enc]} vs baseline's proven optima",
                matched,
            )
    return None, matched


def main() -> int:
    try:
        report_path, baseline_path, max_regress = parse_args(sys.argv[1:])
    except ValueError as e:
        print(f"usage: check_bench_metrics.py REPORT.json [--baseline PREV.json]"
              f" [--max-regress FRACTION] ({e})", file=sys.stderr)
        return 2
    with open(report_path, encoding="utf-8") as fh:
        report = json.load(fh)

    instances = report.get("instances", [])
    if not instances and report.get("stream") is None:
        print("check_bench_metrics: no instances in report", file=sys.stderr)
        return 1

    for check in (check_metrics, check_refine, check_ab):
        err = check(instances)
        if err:
            print(f"check_bench_metrics: {err}", file=sys.stderr)
            return 1
    for check in (check_serve, check_sat, check_kernel, check_stream):
        err = check(report)
        if err:
            print(f"check_bench_metrics: {err}", file=sys.stderr)
            return 1

    matched = None
    if baseline_path is not None:
        err, matched = check_baseline(report, baseline_path, max_regress)
        if err:
            print(f"check_bench_metrics: {err}", file=sys.stderr)
            return 1
        if matched == 0:
            print("check_bench_metrics: warning: no overlapping "
                  "(instance, encoder) pairs with the baseline", file=sys.stderr)

    refined = sum(1 for i in instances if i.get("refine"))
    msg = (f"check_bench_metrics: OK ({len(instances)} instances, "
           f"{refined} with refine A/B, "
           f"work {[i['metrics']['total_work'] for i in instances]}")
    serve = report.get("totals", {}).get("serve")
    if serve:
        msg += (f", serve warm hit rate {serve.get('warm_hit_rate', 0):.0%}"
                f" @ {serve.get('speedup', 0):.2f}x")
    sat = report.get("totals", {}).get("sat")
    if sat:
        msg += (f", sat proved {sat.get('proved', 0)}/{sat.get('checked', 0)}"
                f" optima (total {sat.get('total_optimum', 0)})")
    kern = report.get("totals", {}).get("kernel")
    if kern:
        msg += f", kernel wide {kern.get('speedup_per_work', 0):.2f}x scalar"
    stream = report.get("stream")
    if stream:
        msg += (f", stream warm {stream.get('speedup', 0):.2f}x cold"
                f" @ {stream.get('hit_rate', 0):.0%} hits"
                f" (peak live {stream.get('peak_live', 0)}"
                f"/{stream.get('live_bound', 0)})")
    if matched is not None:
        msg += f", {matched} baseline pairs within +{max_regress:.0%}"
    print(msg + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
