//! Using the two-level logic substrate directly: read a PLA, minimize it
//! with the in-tree ESPRESSO, verify equivalence, and print the result —
//! the substrate is a usable standalone minimizer.
//!
//! ```text
//! cargo run --release --example logic_minimizer [path/to/file.pla]
//! ```

// Examples favour brevity over error plumbing; the panic-freedom policy
// applies to library and binary code, so waive it explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::logic::{
    complement, equivalent, espresso, exact_minimize, implements, parse_pla, write_pla,
    ExactOutcome,
};

/// A redundant two-output function used when no file is given.
const DEFAULT_PLA: &str = "\
.i 4
.o 2
.type fd
1100 10
1101 10
1110 10
1111 10
0011 01
0111 01
1011 01
0000 1-
";

fn main() {
    let (name, text) = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            (path, text)
        }
        None => ("builtin".to_owned(), DEFAULT_PLA.to_owned()),
    };
    let mut pla = parse_pla(&text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    println!(
        "{name}: {} inputs, {} outputs, {} on-cubes, {} dc-cubes",
        pla.num_inputs(),
        pla.num_outputs(),
        pla.on.len(),
        pla.dc.len()
    );

    let minimized = espresso(&pla.on, &pla.dc);
    assert!(
        implements(&minimized, &pla.on, &pla.dc),
        "minimized cover must implement the function"
    );
    println!(
        "espresso: {} -> {} cubes ({} literals)",
        pla.on.len(),
        minimized.len(),
        minimized.literal_cost()
    );

    // For small functions, confirm against the exact minimizer.
    if pla.num_inputs() <= 6 {
        match exact_minimize(&pla.on, &pla.dc, 500_000) {
            ExactOutcome::Minimum(exact) => {
                println!("exact minimum: {} cubes", exact.len());
                if pla.dc.is_empty() {
                    assert!(equivalent(&minimized, &exact));
                }
            }
            ExactOutcome::Truncated(best) => {
                println!("exact search hit its budget; best found: {} cubes", best.len())
            }
        }
    }

    let off = complement(&pla.on.union(&pla.dc));
    println!("off-set: {} cubes", off.len());

    pla.on = minimized;
    println!("\nminimized PLA:\n{}", write_pla(&pla));
}
