//! Quickstart: the paper's running example (Figure 1), end to end.
//!
//! A symbolic input with 15 values is minimized into four symbolic
//! implicants; each multi-symbol implicant becomes a face constraint. The
//! complete set is not embeddable in the minimum 4 bits, so what matters is
//! *how cheaply* the violated constraint is implemented — exactly what
//! PICOLA optimizes and conventional tools ignore.
//!
//! ```text
//! cargo run --example quickstart
//! ```

// Examples favour brevity over error plumbing; the panic-freedom policy
// applies to library and binary code, so waive it explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::constraints::{GroupConstraint, SymbolSet};
use picola::core::{evaluate_encoding, picola_encode, RunReport};

fn main() {
    // Figure 1b of the paper (symbols s1..s15 are 0-based here):
    //   L1 = {s2, s6, s8, s14}
    //   L2 = {s1, s2}
    //   L3 = {s9, s14}
    //   L4 = {s6, s7, s8, s9, s14}
    let n = 15;
    let groups: [&[usize]; 4] = [
        &[1, 5, 7, 13],
        &[0, 1],
        &[8, 13],
        &[5, 6, 7, 8, 13],
    ];
    let constraints: Vec<GroupConstraint> = groups
        .iter()
        .map(|g| GroupConstraint::new(SymbolSet::from_members(n, g.iter().copied())))
        .collect();

    println!("face constraints over {n} symbols (minimum code length = 4):");
    for (i, c) in constraints.iter().enumerate() {
        println!("  L{} = {}", i + 1, c.members());
    }
    println!();

    let result = picola_encode(n, &constraints);
    println!("PICOLA encoding:");
    println!("{}", result.encoding);
    println!();

    let evaluation = evaluate_encoding(&result.encoding, &constraints);
    let report = RunReport {
        result: &result,
        evaluation: &evaluation,
        constraints: &constraints,
    };
    println!("{report}");
    println!(
        "L4 holds five symbols: a 5-symbol face needs a dimension-3 cube \
         (8 codes) and room for the other 10 symbols in 16 codes, so the \
         full set cannot be embedded in 4 bits. PICOLA's guide constraints \
         keep the violated implicant cheap instead of abandoning it."
    );
}
