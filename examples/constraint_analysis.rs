//! Anatomy of an input-encoding problem: parse a KISS2 machine, extract its
//! face constraints by multi-valued minimization, and analyse embeddability
//! — dimension geometry, pairwise nv-compatibility, and what PICOLA's
//! classifier would do.
//!
//! ```text
//! cargo run --example constraint_analysis [path/to/machine.kiss2]
//! ```

// Examples favour brevity over error plumbing; the panic-freedom policy
// applies to library and binary code, so waive it explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::constraints::{
    extract_constraints, min_code_length, nv_compatible, ConstraintMatrix, Geometry,
};
use picola::core::update_constraints;
use picola::fsm::{parse_kiss, symbolic_cover};

/// A small traffic-light-style controller used when no file is given.
const DEFAULT_KISS: &str = "\
.i 2
.o 2
.r green
00 green  green  10
01 green  yellow 10
1- green  yellow 10
-- yellow red    01
00 red    red    01
01 red    red    01
1- red    green  01
-- walk   green  11
";

fn main() {
    let (name, text) = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            (path, text)
        }
        None => ("traffic".to_owned(), DEFAULT_KISS.to_owned()),
    };
    let fsm = parse_kiss(&name, &text).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("{fsm}");
    let n = fsm.num_states();
    let nv = min_code_length(n);
    println!("minimum code length: {nv} bits, {} spare codes", (1usize << nv) - n);
    println!();

    let sc = symbolic_cover(&fsm);
    let constraints = extract_constraints(&sc);
    println!("extracted {} face constraints:", constraints.len());
    for (i, c) in constraints.iter().enumerate() {
        let g = Geometry::unconstrained(c.len(), nv);
        println!(
            "  L{i} = {} weight {} | dim range [{}..{}], embeddable alone: {}",
            c.members(),
            c.weight(),
            g.lower,
            g.upper,
            g.feasible_in(nv, n)
        );
    }
    println!();

    println!("pairwise nv-compatibility (necessary conditions):");
    for i in 0..constraints.len() {
        for j in (i + 1)..constraints.len() {
            let gi = Geometry::unconstrained(constraints[i].len(), nv);
            let gj = Geometry::unconstrained(constraints[j].len(), nv);
            let ok = nv_compatible(
                constraints[i].members(),
                gi,
                constraints[j].members(),
                gj,
                nv,
                n,
            );
            if !ok {
                println!("  L{i} and L{j} cannot both be satisfied in {nv} bits");
            }
        }
    }

    let mut matrix = ConstraintMatrix::new(n, nv, constraints);
    let outcome = update_constraints(&mut matrix, true);
    println!();
    println!(
        "initial Classify(): {} infeasible, {} guide constraints generated",
        outcome.newly_infeasible.len(),
        outcome.guides_added.len()
    );
    for &g in &outcome.guides_added {
        println!("  guide: {}", matrix.constraint(g).constraint());
    }
}
