//! State assignment of a benchmark FSM with four different encoders,
//! reporting the minimized two-level size of each implementation — the
//! workload of the paper's Table II.
//!
//! ```text
//! cargo run --release --example state_assignment [machine-name]
//! ```

// Examples favour brevity over error plumbing; the panic-freedom policy
// applies to library and binary code, so waive it explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::{NaturalEncoder, NovaEncoder};
use picola::core::Encoder;
use picola::fsm::benchmark_fsm;
use picola::stassign::{assign_states, next_state_adjacency, FlowOptions, PicolaStateEncoder};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "donfile".into());
    let Some(fsm) = benchmark_fsm(&name) else {
        eprintln!("unknown benchmark {name:?}; see picola::fsm::BENCHMARKS");
        std::process::exit(2);
    };
    println!("{fsm}");
    println!();

    let flow = FlowOptions::default();
    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::new(NaturalEncoder),
        Box::new(NovaEncoder::i_hybrid()),
        Box::new(NovaEncoder::io_hybrid(next_state_adjacency(&fsm))),
        Box::new(PicolaStateEncoder::for_fsm(&fsm)),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "encoder", "size", "literals", "constraints", "time"
    );
    for encoder in &encoders {
        let r = assign_states(&fsm, encoder.as_ref(), &flow);
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>11.3}s",
            r.encoder_name,
            r.size,
            r.literals,
            r.num_constraints,
            r.total_time().as_secs_f64()
        );
    }
    println!();
    println!("size = product terms of the minimized encoded machine (paper Table II metric)");
}
