//! Encoding the mnemonic input field of a microprogram — the paper's other
//! motivating application (§1: “encoding of mnemonic input fields of the
//! microcode”).
//!
//! A toy control store drives 5 control lines from a 12-value opcode
//! mnemonic. The symbolic control table is minimized as a multi-valued
//! function; each minimized implicant grouping several mnemonics becomes a
//! face constraint, and PICOLA packs the mnemonics into 4 opcode bits so
//! the decoder PLA keeps one product term per group.
//!
//! ```text
//! cargo run --release --example microcode
//! ```

// Examples favour brevity over error plumbing; the panic-freedom policy
// applies to library and binary code, so waive it explicitly here.
#![allow(clippy::expect_used, clippy::unwrap_used, clippy::panic)]

use picola::baselines::NaturalEncoder;
use picola::constraints::{extract_constraints, Encoding, GroupConstraint};
use picola::core::{evaluate_encoding, picola_encode, Encoder};
use picola::fsm::SymbolicCover;
use picola::logic::{Cover, Cube, DomainBuilder};

const MNEMONICS: [&str; 12] = [
    "ADD", "SUB", "AND", "OR", "XOR", "LD", "LDI", "ST", "STI", "BEQ", "BNE", "NOP",
];

/// Control lines: alu_en, mem_rd, mem_wr, reg_wr, branch.
const CONTROL: [(usize, [u8; 5]); 12] = [
    (0, [1, 0, 0, 1, 0]),  // ADD
    (1, [1, 0, 0, 1, 0]),  // SUB
    (2, [1, 0, 0, 1, 0]),  // AND
    (3, [1, 0, 0, 1, 0]),  // OR
    (4, [1, 0, 0, 1, 0]),  // XOR
    (5, [0, 1, 0, 1, 0]),  // LD
    (6, [0, 1, 0, 1, 0]),  // LDI
    (7, [0, 0, 1, 0, 0]),  // ST
    (8, [0, 0, 1, 0, 0]),  // STI
    (9, [0, 0, 0, 0, 1]),  // BEQ
    (10, [0, 0, 0, 0, 1]), // BNE
    (11, [0, 0, 0, 0, 0]), // NOP
];

fn main() {
    let n = MNEMONICS.len();
    // The symbolic control table: one multi-valued variable (the mnemonic)
    // and five control outputs — no next-state field, this is pure input
    // encoding.
    let domain = DomainBuilder::new().multi("op", n).output("ctl", 5).build();
    let mut on = Cover::empty(&domain);
    for (op, lines) in CONTROL {
        let asserted: Vec<usize> = (0..5).filter(|&o| lines[o] == 1).collect();
        if asserted.is_empty() {
            continue;
        }
        let mut c = Cube::full(&domain);
        c.restrict(&domain, 0, op);
        let ov = domain.output_var().expect("output var");
        for p in domain.var(ov).part_range() {
            c.clear_part(p);
        }
        for o in asserted {
            c.set_part(domain.var(ov).offset() + o);
        }
        on.push(c);
    }
    let sc = SymbolicCover {
        dc: Cover::empty(&domain),
        domain,
        on,
        num_states: n,
        num_inputs: 0,
        num_outputs: 5,
    };

    let constraints: Vec<GroupConstraint> = extract_constraints(&sc);
    println!("opcode groups sharing control terms (face constraints):");
    for c in &constraints {
        let names: Vec<&str> = c.members().iter().map(|i| MNEMONICS[i]).collect();
        println!("  {{{}}}", names.join(", "));
    }
    println!();

    let result = picola_encode(n, &constraints);
    let natural = NaturalEncoder.encode(n, &constraints);
    print_encoding("PICOLA", &result.encoding, &constraints);
    print_encoding("naive (enumeration order)", &natural, &constraints);
}

fn print_encoding(label: &str, enc: &Encoding, constraints: &[GroupConstraint]) {
    let eval = evaluate_encoding(enc, constraints);
    println!(
        "{label}: {} decoder product terms ({} of {} groups single-term)",
        eval.total_cubes, eval.satisfied, eval.evaluated
    );
    for (i, name) in MNEMONICS.iter().enumerate() {
        println!(
            "  {name:<4} = {code:0width$b}",
            code = enc.code(i),
            width = enc.nv()
        );
    }
    println!();
}
