//! # picola — face-constrained encoding of symbols using minimum code length
//!
//! A Rust reproduction of *“An Algorithm for Face-Constrained Encoding of
//! Symbols Using Minimum Code Length”* (Martínez, Avedillo, Quintana,
//! Huertas — DATE 1999): the **PICOLA** column-based encoder for the partial
//! face-constrained encoding problem, together with every substrate it needs
//! — an ESPRESSO-style two-level/multi-valued logic minimizer, a KISS2 FSM
//! toolkit with a benchmark suite, the face-constraint machinery (enriched
//! constraint matrix, nv-compatibility, guide constraints), NOVA-style and
//! ENC-style baselines, and a complete state-assignment flow.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and hosts the runnable examples and cross-crate integration
//! tests.
//!
//! ## Quick start
//!
//! ```
//! use picola::constraints::{GroupConstraint, SymbolSet};
//! use picola::core::{evaluate_encoding, picola_encode};
//!
//! // Encode 8 symbols in 3 bits so that {0,1,2,3} and {4,5} are faces.
//! let n = 8;
//! let constraints = vec![
//!     GroupConstraint::new(SymbolSet::from_members(n, [0, 1, 2, 3])),
//!     GroupConstraint::new(SymbolSet::from_members(n, [4, 5])),
//! ];
//! let result = picola_encode(n, &constraints);
//! let eval = evaluate_encoding(&result.encoding, &constraints);
//! assert_eq!(eval.total_cubes, 2); // both faces embedded: one cube each
//! ```
//!
//! ## Where to look
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`logic`] | cubes, covers, ESPRESSO, exact minimization, PLA I/O |
//! | [`fsm`] | KISS2, FSM model, symbolic covers, benchmark suite |
//! | [`constraints`] | face constraints, encodings, constraint matrix, Theorem I |
//! | [`core`] | the PICOLA algorithm and encoding evaluation |
//! | [`baselines`] | NOVA-like, ENC-like, annealing, trivial encoders |
//! | [`stassign`] | the state-assignment tool (paper Table II) |
//! | [`server`] | the fault-tolerant encoding daemon (`picola serve`) |
//!
//! The experiment harness lives in the `picola-bench` crate
//! (`cargo run -p picola-bench --release --bin table1` / `table2` /
//! `ablation` / `sweep`).

#![warn(missing_docs)]

pub use picola_baselines as baselines;
pub use picola_constraints as constraints;
pub use picola_core as core;
pub use picola_fsm as fsm;
pub use picola_logic as logic;
pub use picola_sat as sat;
pub use picola_server as server;
pub use picola_stassign as stassign;

/// Convenient glob-import surface with the most used items.
pub mod prelude {
    pub use picola_baselines::{
        AnnealingEncoder, DichotomyEncoder, EncLikeEncoder, NaturalEncoder, NovaEncoder,
        RandomEncoder,
    };
    pub use picola_constraints::{
        extract_constraints, min_code_length, Encoding, GroupConstraint, SymbolSet,
    };
    pub use picola_core::{
        estimate_cubes, evaluate_encoding, picola_encode, picola_encode_with, CostModel, Encoder,
        PicolaEncoder, PicolaOptions,
    };
    pub use picola_fsm::{benchmark_fsm, parse_kiss, symbolic_cover, Fsm};
    pub use picola_logic::{espresso, Cover, Cube, Domain, DomainBuilder};
    pub use picola_sat::{ExactOracle, SatEncoder};
    pub use picola_stassign::{assign_states, FlowOptions, PicolaStateEncoder};
}
