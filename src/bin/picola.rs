//! `picola` — command-line front end.
//!
//! ```text
//! picola encode <machine.kiss2>     face constraints + PICOLA codes
//! picola assign <machine.kiss2>     full state assignment, emits the
//!                                   minimized encoded PLA on stdout
//! picola minimize <file.pla>        two-level minimization of a PLA
//! picola bench <name>               synthesize a suite benchmark as KISS2
//! ```

use picola::constraints::{extract_constraints, min_code_length};
use picola::core::{evaluate_encoding, picola_encode};
use picola::fsm::{benchmark_fsm, parse_kiss, symbolic_cover, write_kiss};
use picola::logic::{espresso, parse_pla, write_pla};
use picola::stassign::{assign_states, FlowOptions, PicolaStateEncoder};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: picola <encode|assign|minimize|export-mv|reduce|bench> <file|name>\n\
         \n\
         encode    <machine.kiss2>  extract face constraints, print PICOLA codes\n\
         assign    <machine.kiss2>  full state assignment, print minimized PLA\n\
         minimize  <file.pla>       two-level minimization (ESPRESSO)\n\
         export-mv <machine.kiss2>  print the symbolic cover as a .mv PLA\n\
         reduce    <machine.kiss2>  merge equivalent states, print KISS2\n\
         bench     <name>           print a synthetic suite benchmark as KISS2"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("picola: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [cmd, target] = args.as_slice() else {
        return usage();
    };

    match cmd.as_str() {
        "encode" => {
            let text = match read(target) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let fsm = match parse_kiss(target, &text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("picola: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let n = fsm.num_states();
            println!("# {fsm}");
            println!("# minimum code length: {} bits", min_code_length(n));
            let constraints = extract_constraints(&symbolic_cover(&fsm));
            for c in &constraints {
                println!("# constraint {c} (weight {})", c.weight());
            }
            let result = picola_encode(n, &constraints);
            let eval = evaluate_encoding(&result.encoding, &constraints);
            println!(
                "# {} of {} constraints satisfied, {} cubes total",
                eval.satisfied, eval.evaluated, eval.total_cubes
            );
            for (i, name) in fsm.states().iter().enumerate() {
                println!(
                    "{name} {code:0width$b}",
                    code = result.encoding.code(i),
                    width = result.encoding.nv()
                );
            }
            ExitCode::SUCCESS
        }
        "assign" => {
            let text = match read(target) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let fsm = match parse_kiss(target, &text) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("picola: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let tool = PicolaStateEncoder::for_fsm(&fsm);
            let r = assign_states(&fsm, &tool, &FlowOptions::default());
            eprintln!(
                "# {}: size {} product terms, {} literals, {:.3}s",
                fsm.name(),
                r.size,
                r.literals,
                r.total_time().as_secs_f64()
            );
            for (i, name) in fsm.states().iter().enumerate() {
                eprintln!(
                    "# {name} = {code:0width$b}",
                    code = r.encoding.code(i),
                    width = r.encoding.nv()
                );
            }
            // Re-run the encoding step to emit the minimized PLA.
            let em = picola::stassign::encode_machine(&fsm, &r.encoding);
            let mut pla = picola::logic::Pla::new(
                fsm.num_inputs() + r.encoding.nv(),
                r.encoding.nv() + fsm.num_outputs(),
            );
            let minimized = espresso(&em.on, &em.dc);
            for c in minimized.iter() {
                // Domains are structurally identical (binary inputs + output
                // var), so cubes carry over verbatim.
                pla.on.push(c.clone());
            }
            println!("{}", write_pla(&pla));
            ExitCode::SUCCESS
        }
        "minimize" => {
            let text = match read(target) {
                Ok(t) => t,
                Err(code) => return code,
            };
            let mut pla = match parse_pla(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("picola: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let before = pla.on.len();
            pla.on = espresso(&pla.on, &pla.dc);
            eprintln!("# {before} -> {} cubes", pla.on.len());
            println!("{}", write_pla(&pla));
            ExitCode::SUCCESS
        }
        "export-mv" => {
            let text = match read(target) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match parse_kiss(target, &text) {
                Ok(fsm) => {
                    let sc = symbolic_cover(&fsm);
                    print!("{}", picola::logic::write_mv_pla(&sc.on));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("picola: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "reduce" => {
            let text = match read(target) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match parse_kiss(target, &text) {
                Ok(fsm) => {
                    let reduced = picola::fsm::minimize_states(&fsm);
                    eprintln!(
                        "# {} -> {} states",
                        fsm.num_states(),
                        reduced.num_states()
                    );
                    print!("{}", write_kiss(&reduced));
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("picola: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "bench" => match benchmark_fsm(target) {
            Some(fsm) => {
                print!("{}", write_kiss(&fsm));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("picola: unknown benchmark {target:?}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
