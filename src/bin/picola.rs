//! `picola` — command-line front end.
//!
//! ```text
//! picola encode <machine.kiss2>     face constraints + PICOLA codes
//! picola assign <machine.kiss2>     full state assignment, emits the
//!                                   minimized encoded PLA on stdout
//! picola portfolio <machine.kiss2>  race every encoder, print the table
//! picola sat <machine.kiss2>        prove the exact optimum via the SAT
//!                                   oracle (small machines; see --dimacs)
//! picola minimize <file.pla>        two-level minimization of a PLA
//! picola bench <name>               synthesize a suite benchmark as KISS2
//! picola serve <addr>               run the encoding daemon on <addr>
//! picola submit <addr> <file>       send a file to a daemon, print result
//! ```
//!
//! Global flags (accepted anywhere on the command line):
//!
//! ```text
//! --budget-ms <n>     wall-clock budget in milliseconds
//! --budget-work <n>   work-unit budget (loop iterations, search nodes)
//! --threads <n>       worker threads (never changes results, only speed)
//! --trace-json <path> write the observability trace (spans, counters,
//!                     per-phase work and wall time) as JSON to <path>
//! ```
//!
//! An exhausted budget never fails the run: the tool emits its best-so-far
//! result, marks it with a `# status: degraded (...)` comment, and exits 0.
//! A consumer closing the output pipe early (`picola ... | head`) stops the
//! run cleanly with exit 0 — never a panic.
//!
//! Exit codes:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | success (including degraded-by-budget)    |
//! | 2    | usage error                               |
//! | 3    | I/O error                                 |
//! | 4    | parse error (KISS2 / PLA)                 |
//! | 5    | invalid input (semantically unusable)     |
//! | 70   | internal error or caught panic            |
//! | 75   | transient failure (daemon load-shed every |
//! |      | retry; resubmitting later may succeed)    |

use picola::constraints::{extract_constraints, min_code_length};
use picola::core::{
    evaluate_encoding, try_picola_encode_with, Budget, Completion, PicolaError, PicolaOptions,
};
use picola::fsm::{benchmark_fsm, parse_kiss, symbolic_cover, write_kiss};
use picola::logic::sat::FaceProblem;
use picola::logic::{espresso_bounded, parse_pla, write_pla, MinimizeOptions};
use picola::sat::{ExactOracle, OracleError};
use picola::server::{Client, ClientError, JobKind, JobRequest, RetryPolicy, Status};
use picola::server::{Server, ServerConfig};
use picola::stassign::{assign_states_bounded, FlowOptions, PicolaStateEncoder};
use std::fmt;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by SIGTERM/SIGINT; `serve` polls it to begin a graceful drain.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    // The handler only performs an atomic store — async-signal-safe.
    extern "C" fn handle(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let h = handle as extern "C" fn(i32) as usize;
        // SAFETY: registering an async-signal-safe handler via the libc
        // `signal` entry point; both arguments are valid by construction.
        unsafe {
            signal(SIGINT, h);
            signal(SIGTERM, h);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

const USAGE: &str = "\
usage: picola [--budget-ms N] [--budget-work N] [--threads N]
              [--trace-json PATH] <command> <file|name>

encode    <machine.kiss2>  extract face constraints, print PICOLA codes
assign    <machine.kiss2>  full state assignment, print minimized PLA
portfolio <machine.kiss2>  race every encoder, print the comparison table
sat       <machine.kiss2>  prove the exact minimum-cube encoding with the
                           CNF oracle (machines up to 32 states); an
                           exhausted budget or the built-in 100k-conflict
                           probe cap degrades to the best witness, which
                           is then reported as not proven
minimize  <file.pla>       two-level minimization (ESPRESSO)
export-mv <machine.kiss2>  print the symbolic cover as a .mv PLA
reduce    <machine.kiss2>  merge equivalent states, print KISS2
bench     <name>           print a synthetic suite benchmark as KISS2
serve     <addr>           run the encoding daemon (e.g. 127.0.0.1:4815);
                           SIGTERM/SIGINT or a `shutdown` request drains
submit    <addr> <file>    submit a .kiss2 / .mv PLA file to a daemon and
                           print the terminal response frame (exit 75 when
                           every retry was load-shed); with --batch FILE,
                           stream every job file listed in FILE (one path
                           per line, # comments) over one connection

--budget-ms N    stop refining after N milliseconds (graceful: the best
                 result so far is still emitted, exit code stays 0)
--budget-work N  stop refining after N abstract work units
--threads N      worker threads for `encode` refinement and the `portfolio`
                 race (results are identical for any value; default 1)
--trace-json P   write the run's observability trace (hierarchical spans,
                 monotonic counters, per-phase work units and wall time)
                 as JSON to P; results are bit-identical with or without
--workers N        serve: worker threads in the job pool (default 2)
--queue-depth N    serve: admission-control queue bound (default 16)
--cache-capacity N serve: shared minimization-cache entry bound
--store DIR        serve: content-addressed result store directory; warm
                   entries answer repeat jobs without recomputing
--batch FILE       submit: stream every job file listed in FILE over one
                   connection, one response frame per job
--dimacs P         sat: also write the CNF compiled at the final cost bound
                   (satisfiable exactly by the optimal encodings) to P";

/// Everything that can go wrong in the CLI, mapped to distinct exit codes.
#[derive(Debug)]
enum AppError {
    /// Bad command line (exit 2).
    Usage(String),
    /// File could not be read (exit 3).
    Io { path: String, message: String },
    /// Input file did not parse (exit 4).
    Parse(String),
    /// Input parsed but is semantically unusable (exit 5).
    Invalid(String),
    /// A should-not-happen failure surfaced as an error (exit 70).
    Internal(String),
    /// A daemon load-shed every retry; resubmitting later may succeed
    /// (exit 75, mirroring BSD `EX_TEMPFAIL`).
    Transient(String),
    /// Stdout's reader went away (`picola ... | head`). Not a failure:
    /// the run stops early and exits 0, per the POSIX convention.
    PipeClosed,
}

impl AppError {
    fn exit_code(&self) -> u8 {
        match self {
            AppError::Usage(_) => 2,
            AppError::Io { .. } => 3,
            AppError::Parse(_) => 4,
            AppError::Invalid(_) => 5,
            AppError::Internal(_) => 70,
            AppError::Transient(_) => 75,
            AppError::PipeClosed => 0,
        }
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Usage(m) => write!(f, "{m}"),
            AppError::Io { path, message } => write!(f, "cannot read {path}: {message}"),
            AppError::Parse(m) => write!(f, "{m}"),
            AppError::Invalid(m) => write!(f, "{m}"),
            AppError::Internal(m) => write!(f, "{m}"),
            AppError::Transient(m) => write!(f, "{m}"),
            AppError::PipeClosed => write!(f, "output pipe closed"),
        }
    }
}

/// Writes to stdout without the default panic-on-EPIPE: a consumer that
/// stops reading (`head`, `less` quit early) winds the run down cleanly.
fn out(text: &str) -> Result<(), AppError> {
    use std::io::Write as _;
    std::io::stdout()
        .lock()
        .write_all(text.as_bytes())
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::BrokenPipe {
                AppError::PipeClosed
            } else {
                AppError::Io {
                    path: "<stdout>".into(),
                    message: e.to_string(),
                }
            }
        })
}

fn outln(text: &str) -> Result<(), AppError> {
    out(text)?;
    out("\n")
}

/// Best-effort stderr diagnostics: a closed stderr must not panic the run.
fn errln(text: &str) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr().lock(), "{text}");
}

impl From<PicolaError> for AppError {
    fn from(e: PicolaError) -> Self {
        match e {
            PicolaError::InvalidInput(m) => AppError::Invalid(m),
            PicolaError::Internal(m) => AppError::Internal(m),
        }
    }
}

/// The parsed command line: subcommand, its target, the run budget, and
/// the worker-thread count.
struct Cli {
    command: String,
    target: String,
    /// Second operand for commands that take one (`submit <addr> <file>`).
    extra: Option<String>,
    budget: Budget,
    budget_ms: Option<u64>,
    budget_work: Option<u64>,
    threads: usize,
    trace_json: Option<String>,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    cache_capacity: Option<usize>,
    dimacs: Option<String>,
    store: Option<String>,
    batch: Option<String>,
}

fn parse_cli(args: &[String]) -> Result<Cli, AppError> {
    let mut positional: Vec<&String> = Vec::new();
    let mut budget = Budget::unlimited();
    let mut budget_ms: Option<u64> = None;
    let mut budget_work: Option<u64> = None;
    let mut threads = 1usize;
    let mut trace_json: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut cache_capacity: Option<usize> = None;
    let mut dimacs: Option<String> = None;
    let mut store: Option<String> = None;
    let mut batch: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-json" => {
                let value = it
                    .next()
                    .ok_or_else(|| AppError::Usage(format!("{arg} needs a path")))?;
                trace_json = Some(value.clone());
            }
            "--dimacs" => {
                let value = it
                    .next()
                    .ok_or_else(|| AppError::Usage(format!("{arg} needs a path")))?;
                dimacs = Some(value.clone());
            }
            "--store" => {
                let value = it
                    .next()
                    .ok_or_else(|| AppError::Usage(format!("{arg} needs a directory")))?;
                store = Some(value.clone());
            }
            "--batch" => {
                let value = it
                    .next()
                    .ok_or_else(|| AppError::Usage(format!("{arg} needs a file")))?;
                batch = Some(value.clone());
            }
            "--budget-ms" | "--budget-work" | "--threads" | "--workers" | "--queue-depth"
            | "--cache-capacity" => {
                let value = it
                    .next()
                    .ok_or_else(|| AppError::Usage(format!("{arg} needs a value")))?;
                let n: u64 = value
                    .parse()
                    .map_err(|_| AppError::Usage(format!("{arg} needs an integer, got {value:?}")))?;
                let as_usize = usize::try_from(n).unwrap_or(usize::MAX);
                match arg.as_str() {
                    "--budget-ms" => {
                        budget = budget.deadline_in(Duration::from_millis(n));
                        budget_ms = Some(n);
                    }
                    "--budget-work" => {
                        budget = budget.work_limit(n);
                        budget_work = Some(n);
                    }
                    "--workers" => workers = Some(as_usize.max(1)),
                    "--queue-depth" => queue_depth = Some(as_usize.max(1)),
                    "--cache-capacity" => cache_capacity = Some(as_usize.max(1)),
                    _ => threads = as_usize.max(1),
                }
            }
            flag if flag.starts_with("--") => {
                return Err(AppError::Usage(format!("unknown flag {flag}")));
            }
            _ => positional.push(arg),
        }
    }
    let (command, target, extra) = match positional.as_slice() {
        [command, target] => ((*command).clone(), (*target).clone(), None),
        [command, target, extra] => {
            ((*command).clone(), (*target).clone(), Some((*extra).clone()))
        }
        _ => return Err(AppError::Usage("expected <command> <file|name>".into())),
    };
    Ok(Cli {
        command,
        target,
        extra,
        budget,
        budget_ms,
        budget_work,
        threads,
        trace_json,
        workers,
        queue_depth,
        cache_capacity,
        dimacs,
        store,
        batch,
    })
}

fn read(path: &str) -> Result<String, AppError> {
    std::fs::read_to_string(path).map_err(|e| AppError::Io {
        path: path.to_owned(),
        message: e.to_string(),
    })
}

fn read_fsm(path: &str) -> Result<picola::fsm::Fsm, AppError> {
    let text = read(path)?;
    parse_kiss(path, &text).map_err(|e| AppError::Parse(e.to_string()))
}

/// Emits the status comment for a (possibly degraded) run. Goes to stdout
/// so the marker travels with the result; `#` lines are comments in every
/// format the tool emits.
fn print_status(completion: Completion) -> Result<(), AppError> {
    match completion {
        Completion::Complete => Ok(()),
        degraded @ Completion::Degraded { .. } => outln(&format!("# status: {degraded}")),
    }
}

fn cmd_encode(cli: &Cli) -> Result<(), AppError> {
    let fsm = read_fsm(&cli.target)?;
    let n = fsm.num_states();
    outln(&format!("# {fsm}"))?;
    outln(&format!("# minimum code length: {} bits", min_code_length(n)))?;
    let constraints = extract_constraints(&symbolic_cover(&fsm));
    for c in &constraints {
        outln(&format!("# constraint {c} (weight {})", c.weight()))?;
    }
    let opts = PicolaOptions {
        threads: cli.threads,
        ..PicolaOptions::default()
    };
    let result = try_picola_encode_with(n, &constraints, &opts, &cli.budget)?;
    let eval = evaluate_encoding(&result.encoding, &constraints);
    outln(&format!(
        "# {} of {} constraints satisfied, {} cubes total",
        eval.satisfied, eval.evaluated, eval.total_cubes
    ))?;
    print_status(result.completion)?;
    for (i, name) in fsm.states().iter().enumerate() {
        outln(&format!(
            "{name} {code:0width$b}",
            code = result.encoding.code(i),
            width = result.encoding.nv()
        ))?;
    }
    Ok(())
}

fn cmd_sat(cli: &Cli) -> Result<(), AppError> {
    let fsm = read_fsm(&cli.target)?;
    let n = fsm.num_states();
    outln(&format!("# {fsm}"))?;
    outln(&format!("# minimum code length: {} bits", min_code_length(n)))?;
    let constraints = extract_constraints(&symbolic_cover(&fsm));
    for c in &constraints {
        outln(&format!("# constraint {c} (weight {})", c.weight()))?;
    }
    // Seed the upper bound with the heuristic flow so the oracle starts
    // from a tight witness instead of the natural encoding.
    let opts = PicolaOptions {
        threads: cli.threads,
        ..PicolaOptions::default()
    };
    let warm = try_picola_encode_with(n, &constraints, &opts, &cli.budget)?;
    // Hard instances blow up in the final UNSAT proof; the deterministic
    // per-probe cap keeps the command terminating even on an unlimited
    // default budget — a capped run reports its witness as unproven.
    let oracle = ExactOracle {
        conflict_limit: Some(100_000),
        ..ExactOracle::default()
    };
    let out = oracle
        .prove_from(n, &constraints, Some(&warm.encoding), &cli.budget)
        .map_err(|e| match e {
            OracleError::TooLarge { .. } | OracleError::Infeasible => {
                AppError::Invalid(e.to_string())
            }
        })?;
    outln(&format!(
        "# sat: {} cubes ({}), lower bound {}, {} rounds, {} conflicts",
        out.cost,
        if out.optimal {
            "proven optimum"
        } else {
            "best witness, not proven"
        },
        out.lower_bound,
        out.rounds,
        out.stats.conflicts
    ))?;
    print_status(warm.completion.and(out.completion))?;
    if let Some(path) = &cli.dimacs {
        // The CNF at bound = cost is satisfiable exactly by the encodings
        // matching the reported cost — a checkable certificate for any
        // external DIMACS solver.
        let groups: Vec<Vec<usize>> = constraints
            .iter()
            .filter(|c| !c.is_trivial())
            .map(|c| c.members().iter().collect())
            .collect();
        let problem = FaceProblem {
            n,
            nv: min_code_length(n),
            groups,
        };
        let compiled = problem.compile(out.cost);
        std::fs::write(path, compiled.cnf.to_dimacs()).map_err(|e| AppError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        errln(&format!("# wrote CNF (bound {}) to {path}", out.cost));
    }
    for (i, name) in fsm.states().iter().enumerate() {
        outln(&format!(
            "{name} {code:0width$b}",
            code = out.encoding.code(i),
            width = out.encoding.nv()
        ))?;
    }
    Ok(())
}

fn cmd_assign(cli: &Cli) -> Result<(), AppError> {
    let fsm = read_fsm(&cli.target)?;
    let tool = PicolaStateEncoder::for_fsm(&fsm);
    let r = assign_states_bounded(&fsm, &tool, &FlowOptions::default(), &cli.budget);
    errln(&format!(
        "# {}: size {} product terms, {} literals, {:.3}s",
        fsm.name(),
        r.size,
        r.literals,
        r.total_time().as_secs_f64()
    ));
    for (i, name) in fsm.states().iter().enumerate() {
        errln(&format!(
            "# {name} = {code:0width$b}",
            code = r.encoding.code(i),
            width = r.encoding.nv()
        ));
    }
    // Re-run the encoding step to emit the minimized PLA.
    let em = picola::stassign::encode_machine(&fsm, &r.encoding);
    let mut pla = picola::logic::Pla::new(
        fsm.num_inputs() + r.encoding.nv(),
        r.encoding.nv() + fsm.num_outputs(),
    );
    let (minimized, min_completion) = espresso_bounded(
        &em.on,
        &em.dc,
        &MinimizeOptions::default(),
        &cli.budget,
    );
    for c in minimized.iter() {
        // Domains are structurally identical (binary inputs + output
        // var), so cubes carry over verbatim.
        pla.on.push(c.clone());
    }
    print_status(r.completion.and(min_completion))?;
    outln(&write_pla(&pla))?;
    Ok(())
}

fn cmd_portfolio(cli: &Cli) -> Result<(), AppError> {
    let fsm = read_fsm(&cli.target)?;
    let n = fsm.num_states();
    let constraints = extract_constraints(&symbolic_cover(&fsm));
    let portfolio = picola::baselines::standard_portfolio(0).with_threads(cli.threads);
    let Some(outcome) = portfolio.run(n, &constraints, &cli.budget) else {
        return Err(AppError::Internal("portfolio produced no outcome".into()));
    };
    outln(&format!("# {fsm}"))?;
    outln(&format!(
        "# {} constraints ({} non-trivial), {} worker threads",
        constraints.len(),
        constraints.iter().filter(|c| !c.is_trivial()).count(),
        cli.threads
    ))?;
    outln(&format!(
        "{:<10} {:>6} {:>10} {:>10} {:>9}",
        "encoder", "cubes", "satisfied", "wall-ms", "status"
    ))?;
    for m in &outcome.members {
        outln(&format!(
            "{:<10} {:>6} {:>10} {:>10.3} {:>9}",
            m.name,
            m.cost,
            m.satisfied,
            m.wall.as_secs_f64() * 1000.0,
            if m.completion.is_complete() {
                "ok"
            } else {
                "degraded"
            }
        ))?;
    }
    outln(&format!(
        "# winner: {} ({} cubes)",
        outcome.best().name,
        outcome.best().cost
    ))?;
    print_status(outcome.completion)?;
    Ok(())
}

fn cmd_minimize(cli: &Cli) -> Result<(), AppError> {
    let text = read(&cli.target)?;
    let mut pla = parse_pla(&text).map_err(|e| AppError::Parse(e.to_string()))?;
    let before = pla.on.len();
    let (minimized, completion) = espresso_bounded(
        &pla.on,
        &pla.dc,
        &MinimizeOptions::default(),
        &cli.budget,
    );
    pla.on = minimized;
    errln(&format!("# {before} -> {} cubes", pla.on.len()));
    print_status(completion)?;
    outln(&write_pla(&pla))?;
    Ok(())
}

fn cmd_export_mv(cli: &Cli) -> Result<(), AppError> {
    let fsm = read_fsm(&cli.target)?;
    let sc = symbolic_cover(&fsm);
    out(&picola::logic::write_mv_pla(&sc.on))?;
    Ok(())
}

fn cmd_reduce(cli: &Cli) -> Result<(), AppError> {
    let fsm = read_fsm(&cli.target)?;
    let reduced = picola::fsm::minimize_states(&fsm);
    errln(&format!(
        "# {} -> {} states",
        fsm.num_states(),
        reduced.num_states()
    ));
    out(&write_kiss(&reduced))?;
    Ok(())
}

fn cmd_bench(cli: &Cli) -> Result<(), AppError> {
    match benchmark_fsm(&cli.target) {
        Some(fsm) => {
            out(&write_kiss(&fsm))?;
            Ok(())
        }
        None => Err(AppError::Invalid(format!(
            "unknown benchmark {:?}",
            cli.target
        ))),
    }
}

fn cmd_serve(cli: &Cli) -> Result<(), AppError> {
    let mut config = ServerConfig {
        addr: cli.target.clone(),
        ..ServerConfig::default()
    };
    if let Some(w) = cli.workers {
        config.workers = w;
    }
    if let Some(q) = cli.queue_depth {
        config.queue_depth = q;
    }
    if let Some(ms) = cli.budget_ms {
        config.default_budget_ms = ms;
        config.max_budget_ms = config.max_budget_ms.max(ms);
    }
    config.engine.cache_capacity = cli.cache_capacity;
    config.engine.picola.threads = cli.threads;
    config.store_dir = cli.store.clone();
    let handle = Server::start(config).map_err(|e| AppError::Io {
        path: cli.target.clone(),
        message: e.to_string(),
    })?;
    errln(&format!("# picola-server listening on {}", handle.addr()));
    sig::install();
    // Wait for a drain trigger: a wire `shutdown` request or a signal.
    while !handle.is_draining() && !SHUTDOWN_REQUESTED.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = handle.shutdown();
    errln(&format!(
        "# drained: {} completed, {} degraded, {} rejected, {} failed, {} panics contained, \
         {} store hits / {} misses",
        stats.completed,
        stats.degraded,
        stats.rejected,
        stats.failed,
        stats.worker_panics,
        stats.store_hits,
        stats.store_misses
    ));
    Ok(())
}

/// Submits one job file over an existing client connection, prints the
/// terminal frame, and maps the response to the CLI error contract.
fn submit_one(client: &mut Client, cli: &Cli, file: &str, id: &str) -> Result<(), AppError> {
    let text = read(file)?;
    // `.mv` headers mark a multi-valued PLA; everything else is KISS2.
    let kind = if text.lines().any(|l| l.trim_start().starts_with(".mv")) {
        JobKind::EncodeMvPla
    } else {
        JobKind::EncodeKiss
    };
    let mut req = JobRequest::new(id, kind, text);
    req.budget_ms = cli.budget_ms;
    req.budget_work = cli.budget_work;
    let outcome = client
        .submit_with_retry(&req, &RetryPolicy::default())
        .map_err(|e| match e {
            ClientError::RetriesExhausted(m) => AppError::Transient(m),
            other => AppError::Io {
                path: cli.target.clone(),
                message: other.to_string(),
            },
        })?;
    outln(&outcome.response.to_frame())?;
    match outcome.response.status {
        Some(Status::Ok | Status::Degraded) => Ok(()),
        Some(Status::Rejected) => Err(AppError::Transient(
            outcome
                .response
                .body
                .get_str("error")
                .unwrap_or("daemon rejected the job")
                .to_owned(),
        )),
        Some(Status::Error) | None => {
            let msg = outcome
                .response
                .body
                .get_str("error")
                .unwrap_or("daemon error")
                .to_owned();
            match outcome.response.code {
                4 => Err(AppError::Parse(msg)),
                5 => Err(AppError::Invalid(msg)),
                _ => Err(AppError::Internal(msg)),
            }
        }
    }
}

fn cmd_submit(cli: &Cli) -> Result<(), AppError> {
    let mut client = Client::new(cli.target.clone());
    let Some(batch) = &cli.batch else {
        let Some(file) = &cli.extra else {
            return Err(AppError::Usage(
                "submit needs <addr> <file> (or <addr> --batch FILE)".into(),
            ));
        };
        return submit_one(&mut client, cli, file, "cli-1");
    };
    // Batch mode: one connection, one frame per listed job file. Retry
    // hints are honored per job by `submit_with_retry`; a job failing
    // permanently does not stop the stream — the first error is the
    // command's verdict after every job has its answer.
    let list = read(batch)?;
    let mut first_err: Option<AppError> = None;
    let mut submitted = 0usize;
    let mut failed = 0usize;
    for (i, line) in list.lines().enumerate() {
        let file = line.trim();
        if file.is_empty() || file.starts_with('#') {
            continue;
        }
        submitted += 1;
        match submit_one(&mut client, cli, file, &format!("cli-{}", i + 1)) {
            Ok(()) => {}
            Err(AppError::PipeClosed) => return Err(AppError::PipeClosed),
            Err(e) => {
                failed += 1;
                errln(&format!("picola: job {file}: {e}"));
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    errln(&format!(
        "# batch: {} submitted, {} failed",
        submitted, failed
    ));
    match first_err {
        Some(e) => Err(e),
        None if submitted == 0 => Err(AppError::Invalid(format!("{batch}: no job files listed"))),
        None => Ok(()),
    }
}

fn run(args: &[String]) -> Result<(), AppError> {
    let mut cli = parse_cli(args)?;
    // Recording is strictly observational (no feedback into any algorithm),
    // so results are bit-identical with or without --trace-json.
    let trace = cli
        .trace_json
        .is_some()
        .then(picola::logic::Trace::with_wall_clock);
    if let Some(t) = &trace {
        cli.budget = std::mem::take(&mut cli.budget).with_recorder(t.recorder());
    }
    let result = match cli.command.as_str() {
        "encode" => cmd_encode(&cli),
        "sat" => cmd_sat(&cli),
        "assign" => cmd_assign(&cli),
        "portfolio" => cmd_portfolio(&cli),
        "minimize" => cmd_minimize(&cli),
        "export-mv" => cmd_export_mv(&cli),
        "reduce" => cmd_reduce(&cli),
        "bench" => cmd_bench(&cli),
        "serve" => cmd_serve(&cli),
        "submit" => cmd_submit(&cli),
        other => Err(AppError::Usage(format!("unknown command {other:?}"))),
    };
    if let (Ok(()), Some(path), Some(t)) = (&result, &cli.trace_json, &trace) {
        let json = format!(
            "{{\"schema\":\"picola/trace/v1\",\"total_work\":{},\"trace\":{}}}\n",
            t.total_work(),
            t.to_json()
        );
        std::fs::write(path, json).map_err(|e| AppError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
    }
    result
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Belt and braces: the library layer is panic-free by policy, but a CLI
    // must never unwind across `main` — any escaped panic becomes exit 70.
    let outcome = std::panic::catch_unwind(|| run(&args));
    match outcome {
        Ok(Ok(()) | Err(AppError::PipeClosed)) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            errln(&format!("picola: {e}"));
            if matches!(e, AppError::Usage(_)) {
                errln(USAGE);
            }
            ExitCode::from(e.exit_code())
        }
        Err(_) => {
            errln("picola: internal panic (this is a bug)");
            ExitCode::from(70)
        }
    }
}
